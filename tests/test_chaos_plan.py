"""Unit tests for the fault-plan builder and the chaos orchestrator."""

import pytest

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.chaos import (
    ChaosOrchestrator,
    FaultPlan,
    SpikedLatency,
    coordinator,
    random_site,
    shard,
    site,
)
from repro.chaos.scenarios import build_chaos_cluster
from repro.core.config import BROADCAST_OPTIMISTIC
from repro.errors import ChaosError
from repro.network import ConstantLatency
from repro.verification import (
    check_eventual_termination,
    check_one_copy_serializability,
)


def build_registry():
    registry = ProcedureRegistry()

    @registry.procedure("add", conflict_class=lambda p: f"C{p['slot'] % 3}", duration=0.002)
    def add(ctx, params):
        key = f"slot:{params['slot']}"
        ctx.write(key, ctx.read(key) + 1)

    return registry


def build_flat_cluster(seed=3, **overrides):
    return ReplicatedDatabase(
        ClusterConfig(
            site_count=4,
            seed=seed,
            broadcast=BROADCAST_OPTIMISTIC,
            echo_on_first_receipt=True,
            **overrides,
        ),
        build_registry(),
        initial_data={f"slot:{index}": 0 for index in range(6)},
    )


class TestFaultPlanBuilder:
    def test_events_sorted_by_time_then_insertion(self):
        plan = (
            FaultPlan("p")
            .crash("N1", at=0.5)
            .recover("N1", at=0.2)
            .heal(at=0.2)
        )
        actions = [(event.time, event.action) for event in plan.events()]
        assert actions == [(0.2, "recover"), (0.2, "heal"), (0.5, "crash")]

    def test_negative_time_rejected(self):
        with pytest.raises(ChaosError):
            FaultPlan().crash("N1", at=-1.0)

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ChaosError):
            FaultPlan().crash("N1", at=0.0, duration=0.0)
        with pytest.raises(ChaosError):
            FaultPlan().partition(["N1"], at=0.0, duration=-1.0)
        with pytest.raises(ChaosError):
            FaultPlan().latency_spike(0.001, at=0.0, duration=0.0)

    def test_latency_spike_needs_positive_delay(self):
        with pytest.raises(ChaosError):
            FaultPlan().latency_spike(0.0, at=0.0, duration=1.0)

    def test_empty_partition_rejected(self):
        with pytest.raises(ChaosError):
            FaultPlan().partition([], at=0.0)

    def test_empty_heal_target_list_rejected(self):
        # A computed-but-empty site list must not silently mean "heal all".
        with pytest.raises(ChaosError):
            FaultPlan().heal(at=0.0, targets=[])

    def test_heal_without_targets_heals_all(self):
        plan = FaultPlan().heal(at=0.1)
        assert plan.events()[0].targets == ()

    def test_recover_rejects_role_targets(self):
        # A role re-resolves to a live site at fire time, so recovering "the
        # coordinator" could never target the crashed ex-coordinator.
        with pytest.raises(ChaosError):
            FaultPlan().recover(coordinator("S1"), at=0.1)
        with pytest.raises(ChaosError):
            FaultPlan().recover(random_site(), at=0.1)

    def test_string_targets_coerce_to_sites(self):
        plan = FaultPlan().crash("N1", at=0.0)
        target = plan.events()[0].targets[0]
        assert target.kind == "site"
        assert target.site == "N1"

    def test_unknown_target_type_rejected(self):
        with pytest.raises(ChaosError):
            FaultPlan().crash(42, at=0.0)

    def test_faults_cease_at_covers_self_reverting_events(self):
        plan = (
            FaultPlan()
            .crash("N1", at=0.1, duration=0.3)
            .latency_spike(0.001, at=0.2, duration=0.1)
        )
        assert plan.faults_cease_at() == pytest.approx(0.4)

    def test_target_descriptions(self):
        assert site("N1").describe() == "site(N1)"
        assert shard("S2").describe() == "shard(S2)"
        assert coordinator().describe() == "coordinator()"
        assert coordinator("S1").describe() == "coordinator(S1)"
        assert random_site("S1").describe() == "random_site(S1)"

    def test_partition_oneway_needs_both_sides(self):
        with pytest.raises(ChaosError):
            FaultPlan().partition_oneway([], ["N2"], at=0.0)
        with pytest.raises(ChaosError):
            FaultPlan().partition_oneway(["N1"], [], at=0.0)
        with pytest.raises(ChaosError):
            FaultPlan().partition_oneway(["N1"], ["N2"], at=0.0, duration=0.0)

    def test_partition_oneway_carries_both_target_groups(self):
        plan = FaultPlan().partition_oneway(
            ["N1"], [site("N2"), "N3"], at=0.1, duration=0.2
        )
        event = plan.events()[0]
        assert event.action == "partition-oneway"
        assert [target.site for target in event.targets] == ["N1"]
        assert [target.site for target in event.receivers] == ["N2", "N3"]
        assert plan.faults_cease_at() == pytest.approx(0.3)


class TestFlatOrchestration:
    def submit_spread(self, cluster, count=12, spacing=0.004, sites=("N2", "N3", "N4")):
        for index in range(count):
            cluster.kernel.schedule(
                index * spacing,
                lambda s=sites[index % len(sites)], i=index: cluster.submit(
                    s, "add", {"slot": i % 6}
                ),
            )

    def test_coordinator_role_crash_recovers_the_same_site(self):
        cluster = build_flat_cluster()
        self.submit_spread(cluster)
        plan = FaultPlan("failover").crash(coordinator(), at=0.020, duration=0.060)
        orchestrator = ChaosOrchestrator(cluster, plan).arm()
        cluster.run_until_idle()

        # The role resolved to N1 at fire time; the auto-recovery brought the
        # *same* site back even though N2 holds the role by then.
        actions = [(fault.action, fault.sites) for fault in orchestrator.trace]
        assert actions == [("crash", ("N1",)), ("recover", ("N1",))]
        assert cluster.coordinator_site() == "N2"
        assert cluster.replica("N1").committed_count() == 12
        assert cluster.database_divergence() == {}
        check_one_copy_serializability(cluster.histories()).raise_if_violated()
        liveness = check_eventual_termination(cluster)
        liveness.raise_if_violated()
        assert liveness.transactions_checked == 12

    def test_partition_fault_buffers_and_heals(self):
        cluster = build_flat_cluster(seed=5)
        self.submit_spread(cluster, sites=("N1", "N2", "N3"))
        plan = FaultPlan("split").partition([site("N4")], at=0.010, duration=0.050)
        orchestrator = ChaosOrchestrator(cluster, plan).arm()
        cluster.run_until_idle()
        actions = [fault.action for fault in orchestrator.trace]
        assert actions == ["partition", "heal"]
        assert not cluster.transport.partitions.is_partitioned()
        assert cluster.committed_counts()["N4"] == 12

    def test_latency_spike_wraps_and_restores_the_model(self):
        cluster = build_flat_cluster(seed=7, latency_model=ConstantLatency(0.001))
        base_model = cluster.transport.latency_model
        plan = FaultPlan("slow").latency_spike(0.004, at=0.010, duration=0.020)
        observed = {}

        def probe_during():
            observed["during"] = cluster.transport.latency_model

        cluster.kernel.schedule_at(0.015, probe_during)
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run_until_idle()
        assert isinstance(observed["during"], SpikedLatency)
        assert observed["during"].base is base_model
        assert cluster.transport.latency_model is base_model

    def test_overlapping_crash_windows_keep_the_site_down(self):
        # A short crash window nested inside a longer one must not revive the
        # site early: the outer window still holds it down.
        cluster = build_flat_cluster()
        plan = (
            FaultPlan("nested")
            .crash("N4", at=0.010, duration=0.050)
            .crash("N4", at=0.020, duration=0.010)
        )
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.035)  # inner window ended at 0.030
        assert not cluster.crash_manager.is_up("N4")
        cluster.run(until=0.070)  # outer window ended at 0.060
        assert cluster.crash_manager.is_up("N4")

    def test_overlapping_partition_windows_keep_the_site_isolated(self):
        cluster = build_flat_cluster()
        plan = (
            FaultPlan("nested-split")
            .partition([site("N4")], at=0.010, duration=0.050)
            .partition([site("N4")], at=0.020, duration=0.010)
        )
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.035)  # inner window ended at 0.030
        assert not cluster.transport.partitions.connected("N1", "N4")
        cluster.run(until=0.070)  # outer window ended at 0.060
        assert cluster.transport.partitions.connected("N1", "N4")

    def test_explicit_recover_cancels_the_open_crash_window(self):
        # crash(duration=0.050), explicit recover mid-window, then a new
        # *permanent* crash: the cancelled window's auto-recover at 0.060
        # must not revive the permanently crashed site.
        cluster = build_flat_cluster()
        plan = (
            FaultPlan("cancelled-window")
            .crash("N4", at=0.010, duration=0.050)
            .recover("N4", at=0.020)
            .crash("N4", at=0.030)
        )
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.025)
        assert cluster.crash_manager.is_up("N4")
        cluster.run(until=0.100)
        assert not cluster.crash_manager.is_up("N4")

    def test_explicit_heal_cancels_the_open_partition_window(self):
        cluster = build_flat_cluster()
        plan = (
            FaultPlan("cancelled-split")
            .partition([site("N4")], at=0.010, duration=0.050)
            .heal(at=0.020, targets=[site("N4")])
            .partition([site("N4")], at=0.030)  # open-ended
        )
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.100)  # stale auto-heal fired at 0.060
        assert not cluster.transport.partitions.connected("N1", "N4")

    def test_oneway_partition_severs_and_auto_restores(self):
        cluster = build_flat_cluster(seed=5)
        self.submit_spread(cluster, sites=("N1", "N2", "N3"))
        plan = FaultPlan("deaf").partition_oneway(
            [site("N1")], [site("N4")], at=0.010, duration=0.050
        )
        orchestrator = ChaosOrchestrator(cluster, plan).arm()
        probes = {}

        def probe():
            partitions = cluster.transport.partitions
            probes["during"] = (
                partitions.connected("N1", "N4"),
                partitions.connected("N4", "N1"),
            )

        cluster.kernel.schedule_at(0.030, probe)
        cluster.run_until_idle()

        # Only the N1 -> N4 direction was dark; the reverse stayed open.
        assert probes["during"] == (False, True)
        assert cluster.transport.partitions.severed_links() == []
        actions = [(fault.action, fault.sites) for fault in orchestrator.trace]
        assert actions == [
            ("partition-oneway", ("N1->N4",)),
            ("heal", ("N1->N4",)),
        ]
        # Held envelopes were flushed on restore: N4 converges regardless.
        assert cluster.committed_counts()["N4"] == 12
        assert cluster.database_divergence() == {}

    def test_overlapping_oneway_windows_keep_the_link_severed(self):
        cluster = build_flat_cluster()
        plan = (
            FaultPlan("nested-deaf")
            .partition_oneway(["N1"], ["N4"], at=0.010, duration=0.050)
            .partition_oneway(["N1"], ["N4"], at=0.020, duration=0.010)
        )
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.035)  # inner window ended at 0.030
        assert not cluster.transport.partitions.connected("N1", "N4")
        cluster.run(until=0.070)  # outer window ended at 0.060
        assert cluster.transport.partitions.connected("N1", "N4")

    def test_explicit_heal_cancels_the_open_oneway_window(self):
        cluster = build_flat_cluster()
        plan = (
            FaultPlan("cancelled-deaf")
            .partition_oneway(["N1"], ["N4"], at=0.010, duration=0.050)
            .heal(at=0.020, targets=[site("N4")])
            .partition_oneway(["N1"], ["N4"], at=0.030)  # open-ended
        )
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.100)  # stale auto-restore fired at 0.060
        assert not cluster.transport.partitions.connected("N1", "N4")

    def test_oneway_sources_can_be_roles(self):
        cluster = build_flat_cluster()
        plan = FaultPlan("deaf-to-coordinator").partition_oneway(
            [coordinator()], ["N4"], at=0.010, duration=0.030
        )
        orchestrator = ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.020)
        # The role resolved to N1 (the initial coordinator) at fire time.
        assert not cluster.transport.partitions.connected("N1", "N4")
        assert cluster.transport.partitions.connected("N4", "N1")
        cluster.run_until_idle()
        assert orchestrator.trace[0].sites == ("N1->N4",)

    def test_oneway_collapsing_to_no_links_rejected(self):
        cluster = build_flat_cluster()
        plan = FaultPlan("self-deaf").partition_oneway(
            ["N4"], ["N4"], at=0.010
        )
        ChaosOrchestrator(cluster, plan).arm()
        with pytest.raises(ChaosError):
            cluster.run_until_idle()

    def test_inner_window_end_leaves_no_phantom_trace_record(self):
        # The nested window's auto-revert releases nothing, so it must not
        # add a "recover -> ()" entry to the trace.
        cluster = build_flat_cluster()
        plan = (
            FaultPlan("nested")
            .crash("N4", at=0.010, duration=0.050)
            .crash("N4", at=0.020, duration=0.010)
        )
        orchestrator = ChaosOrchestrator(cluster, plan).arm()
        cluster.run_until_idle()
        actions = [(fault.action, fault.sites) for fault in orchestrator.trace]
        assert actions == [
            ("crash", ("N4",)),
            ("crash", ("N4",)),
            ("recover", ("N4",)),
        ]

    def test_overlapping_latency_spikes_compose_additively(self):
        cluster = build_flat_cluster(seed=7, latency_model=ConstantLatency(0.001))
        base_model = cluster.transport.latency_model
        plan = (
            FaultPlan("double-slow")
            .latency_spike(0.005, at=0.010, duration=0.040)  # ends at 0.050
            .latency_spike(0.010, at=0.020, duration=0.040)  # ends at 0.060
        )
        samples = {}

        def probe(label):
            def capture():
                model = cluster.transport.latency_model
                samples[label] = (
                    model.extra_delay if isinstance(model, SpikedLatency) else 0.0
                )
            return capture

        for label, when in (("both", 0.030), ("second-only", 0.055), ("none", 0.065)):
            cluster.kernel.schedule_at(when, probe(label))
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run_until_idle()
        assert samples["both"] == pytest.approx(0.015)
        # After the first spike's window ends, exactly its +5ms is removed.
        assert samples["second-only"] == pytest.approx(0.010)
        assert samples["none"] == 0.0
        assert cluster.transport.latency_model is base_model

    def test_shard_target_rejected_on_flat_cluster(self):
        cluster = build_flat_cluster()
        plan = FaultPlan().crash(shard("S1"), at=0.0)
        ChaosOrchestrator(cluster, plan).arm()
        with pytest.raises(ChaosError):
            cluster.run_until_idle()

    def test_arming_twice_rejected(self):
        cluster = build_flat_cluster()
        orchestrator = ChaosOrchestrator(cluster, FaultPlan().crash("N1", at=0.0))
        orchestrator.arm()
        with pytest.raises(ChaosError):
            orchestrator.arm()

    def test_binding_rejects_unknown_cluster_type(self):
        with pytest.raises(ChaosError):
            ChaosOrchestrator(object(), FaultPlan())


class TestShardedOrchestration:
    def test_shard_target_resolves_to_all_shard_sites(self):
        cluster, _ = build_chaos_cluster(seed=2)
        plan = FaultPlan("outage").crash(shard("S2"), at=0.005, duration=0.020)
        orchestrator = ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.010)
        crash = orchestrator.trace[0]
        assert crash.sites == ("S2:N1", "S2:N2", "S2:N3")
        assert all(not cluster.shard("S2").crash_manager.is_up(s) for s in crash.sites)
        cluster.run_until_idle()
        assert all(cluster.shard("S2").crash_manager.is_up(s) for s in crash.sites)

    def test_coordinator_target_requires_a_shard(self):
        cluster, _ = build_chaos_cluster(seed=2)
        plan = FaultPlan().crash(coordinator(), at=0.0)
        ChaosOrchestrator(cluster, plan).arm()
        with pytest.raises(ChaosError):
            cluster.run_until_idle()

    def test_shard_coordinator_crash_triggers_that_shards_failover(self):
        cluster, _ = build_chaos_cluster(seed=2)
        plan = FaultPlan().crash(coordinator("S1"), at=0.005)
        ChaosOrchestrator(cluster, plan).arm()
        cluster.run(until=0.010)
        assert cluster.shard("S1").coordinator_site() == "S1:N2"
        assert cluster.shard("S2").coordinator_site() == "S2:N1"

    def test_random_site_is_deterministic_per_seed(self):
        picks = []
        for _ in range(2):
            cluster, _ = build_chaos_cluster(seed=11)
            plan = FaultPlan().crash(random_site("S1"), at=0.005, duration=0.010)
            orchestrator = ChaosOrchestrator(cluster, plan).arm()
            cluster.run_until_idle()
            picks.append(orchestrator.trace[0].sites)
        assert picks[0] == picks[1]
        assert picks[0][0].startswith("S1:")
