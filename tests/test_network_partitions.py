"""Unit tests for the partition controller (group bookkeeping + predicates)."""

import pytest

from repro.errors import NetworkError
from repro.network.partitions import PartitionController


class TestConnected:
    def test_fully_connected_by_default(self):
        controller = PartitionController()
        assert controller.connected("N1", "N2")

    def test_site_always_connected_to_itself(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        assert controller.connected("N1", "N1")

    def test_isolated_group_talks_internally_only(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        assert controller.connected("N1", "N2")
        assert not controller.connected("N1", "N3")
        assert not controller.connected("N2", "N4")

    def test_implicit_none_group_sites_stay_connected(self):
        # Sites never mentioned in any isolate() share the implicit group.
        controller = PartitionController()
        controller.isolate(["N1"])
        assert controller.group_of("N3") is None
        assert controller.group_of("N4") is None
        assert controller.connected("N3", "N4")

    def test_empty_group_rejected(self):
        controller = PartitionController()
        with pytest.raises(NetworkError):
            controller.isolate([])


class TestIsPartitioned:
    def test_empty_controller_is_not_partitioned(self):
        controller = PartitionController()
        assert not controller.is_partitioned()
        assert not controller.is_partitioned(all_sites=["N1", "N2"])

    def test_two_explicit_groups_are_partitioned(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        controller.isolate(["N2"])
        assert controller.is_partitioned()
        assert controller.is_partitioned(all_sites=["N1", "N2"])

    def test_single_group_is_conservative_without_site_universe(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        # The controller cannot know whether sites outside the group exist.
        assert controller.is_partitioned()

    def test_single_group_with_outside_site_is_partitioned(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        assert controller.is_partitioned(all_sites=["N1", "N2", "N3"])

    def test_single_group_covering_all_sites_is_not_partitioned(self):
        # Previously wrong: one explicit group containing the whole cluster
        # is fully connected, yet was always reported as a partition.
        controller = PartitionController()
        controller.isolate(["N1", "N2", "N3"])
        assert not controller.is_partitioned(all_sites=["N1", "N2", "N3"])

    def test_heal_all_clears_partition(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        controller.heal()
        assert not controller.is_partitioned()
        assert controller.connected("N1", "N2")

    def test_partial_heal_keeps_remaining_group_partitioned(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        controller.heal(["N1"])
        # N2 is still split off from the implicit group (which now holds N1).
        assert controller.is_partitioned(all_sites=["N1", "N2", "N3"])
        assert not controller.connected("N1", "N2")
        assert controller.connected("N1", "N3")


class TestDirectedLinks:
    def test_sever_blocks_only_one_direction(self):
        controller = PartitionController()
        controller.sever("N1", "N2")
        assert not controller.connected("N1", "N2")
        assert controller.connected("N2", "N1")
        assert controller.severed_links() == [("N1", "N2")]

    def test_self_link_rejected(self):
        controller = PartitionController()
        with pytest.raises(NetworkError):
            controller.sever("N1", "N1")

    def test_restore_reopens_the_link(self):
        controller = PartitionController()
        controller.sever("N1", "N2")
        controller.restore("N1", "N2")
        assert controller.connected("N1", "N2")
        assert controller.severed_links() == []

    def test_restore_of_intact_link_is_a_noop(self):
        controller = PartitionController()
        controller.restore("N1", "N2")
        assert controller.history == []

    def test_severed_links_make_controller_partitioned(self):
        controller = PartitionController()
        assert not controller.is_partitioned(all_sites=["N1", "N2"])
        controller.sever("N1", "N2")
        assert controller.is_partitioned(all_sites=["N1", "N2"])

    def test_directed_links_compose_with_groups(self):
        # A severed link on top of group membership: the group predicate
        # would allow the traffic, the directed rule must still block it.
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        controller.sever("N1", "N2")
        assert not controller.connected("N1", "N2")
        assert controller.connected("N2", "N1")

    def test_heal_of_touching_site_restores_directed_links(self):
        controller = PartitionController()
        controller.sever("N1", "N2")
        controller.sever("N3", "N1")
        controller.sever("N2", "N3")
        controller.heal(["N1"])
        # Both links touching N1 reopen (either direction); N2->N3 stays cut.
        assert controller.connected("N1", "N2")
        assert controller.connected("N3", "N1")
        assert not controller.connected("N2", "N3")

    def test_heal_all_restores_every_directed_link(self):
        controller = PartitionController()
        controller.sever("N1", "N2")
        controller.sever("N2", "N1")
        controller.heal()
        assert controller.severed_links() == []
        assert controller.connected("N1", "N2")


class TestHistory:
    def test_history_records_isolate_and_heal(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"], at_time=1.0)
        controller.heal(at_time=2.0)
        operations = [(time, op) for time, op, _ in controller.history]
        assert operations == [(1.0, "isolate"), (2.0, "heal")]

    def test_history_records_sever_and_restore(self):
        controller = PartitionController()
        controller.sever("N1", "N2", at_time=1.5)
        controller.restore("N1", "N2", at_time=2.5)
        assert controller.history == [
            (1.5, "sever", ("N1", "N2")),
            (2.5, "restore", ("N1", "N2")),
        ]

    def test_clock_stamps_history_when_no_explicit_time_given(self):
        # The transport wires its kernel's clock in, so history entries are
        # chronologically truthful instead of all defaulting to 0.0.
        now = {"value": 3.25}
        controller = PartitionController(clock=lambda: now["value"])
        controller.isolate(["N1"])
        now["value"] = 4.5
        controller.heal()
        assert [(time, op) for time, op, _ in controller.history] == [
            (3.25, "isolate"),
            (4.5, "heal"),
        ]

    def test_explicit_time_wins_over_clock(self):
        controller = PartitionController(clock=lambda: 9.9)
        controller.sever("N1", "N2", at_time=1.0)
        assert controller.history[0][0] == 1.0

    def test_without_clock_or_time_defaults_to_zero(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        assert controller.history[0][0] == 0.0
