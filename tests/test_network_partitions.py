"""Unit tests for the partition controller (group bookkeeping + predicates)."""

import pytest

from repro.errors import NetworkError
from repro.network.partitions import PartitionController


class TestConnected:
    def test_fully_connected_by_default(self):
        controller = PartitionController()
        assert controller.connected("N1", "N2")

    def test_site_always_connected_to_itself(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        assert controller.connected("N1", "N1")

    def test_isolated_group_talks_internally_only(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        assert controller.connected("N1", "N2")
        assert not controller.connected("N1", "N3")
        assert not controller.connected("N2", "N4")

    def test_implicit_none_group_sites_stay_connected(self):
        # Sites never mentioned in any isolate() share the implicit group.
        controller = PartitionController()
        controller.isolate(["N1"])
        assert controller.group_of("N3") is None
        assert controller.group_of("N4") is None
        assert controller.connected("N3", "N4")

    def test_empty_group_rejected(self):
        controller = PartitionController()
        with pytest.raises(NetworkError):
            controller.isolate([])


class TestIsPartitioned:
    def test_empty_controller_is_not_partitioned(self):
        controller = PartitionController()
        assert not controller.is_partitioned()
        assert not controller.is_partitioned(all_sites=["N1", "N2"])

    def test_two_explicit_groups_are_partitioned(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        controller.isolate(["N2"])
        assert controller.is_partitioned()
        assert controller.is_partitioned(all_sites=["N1", "N2"])

    def test_single_group_is_conservative_without_site_universe(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        # The controller cannot know whether sites outside the group exist.
        assert controller.is_partitioned()

    def test_single_group_with_outside_site_is_partitioned(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        assert controller.is_partitioned(all_sites=["N1", "N2", "N3"])

    def test_single_group_covering_all_sites_is_not_partitioned(self):
        # Previously wrong: one explicit group containing the whole cluster
        # is fully connected, yet was always reported as a partition.
        controller = PartitionController()
        controller.isolate(["N1", "N2", "N3"])
        assert not controller.is_partitioned(all_sites=["N1", "N2", "N3"])

    def test_heal_all_clears_partition(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        controller.heal()
        assert not controller.is_partitioned()
        assert controller.connected("N1", "N2")

    def test_partial_heal_keeps_remaining_group_partitioned(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        controller.heal(["N1"])
        # N2 is still split off from the implicit group (which now holds N1).
        assert controller.is_partitioned(all_sites=["N1", "N2", "N3"])
        assert not controller.connected("N1", "N2")
        assert controller.connected("N1", "N3")


class TestHistory:
    def test_history_records_isolate_and_heal(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"], at_time=1.0)
        controller.heal(at_time=2.0)
        operations = [(time, op) for time, op, _ in controller.history]
        assert operations == [(1.0, "isolate"), (2.0, "heal")]
