"""Tests for the fine-granularity (per-object) OTP scheduler extension.

This is the generalisation of the class-queue scheme that the paper sketches
in Sections 2.3 and 6 (reference [13]): transactions predeclare the objects
they access and are queued per object instead of per class, which lets
transactions of overlapping-but-different access sets interleave while still
committing conflicting transactions in the definitive total order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import ExecutionEngine
from repro.core.lockscheduler import LockBasedOTPScheduler
from repro.database import (
    MultiVersionStore,
    ProcedureRegistry,
    StoredProcedure,
    Transaction,
    TransactionRequest,
)
from repro.errors import SchedulerError
from repro.simulation import SimulationKernel


class LockHarness:
    """Single-site harness around the lock-based scheduler."""

    def __init__(self, duration=0.010, seed=0):
        self.kernel = SimulationKernel(seed=seed)
        self.store = MultiVersionStore()
        self.store.load_many({f"obj:{index}": 0 for index in range(12)})
        registry = ProcedureRegistry()

        def body(ctx, params):
            for key in params["keys"]:
                ctx.write(key, ctx.read_or_default(key, 0) + 1)
            return params["keys"]

        registry.register(
            StoredProcedure(name="touch", body=body, conflict_class="__any__", duration=duration)
        )
        self.engine = ExecutionEngine(self.kernel, self.store, registry, "N1")
        self.committed = []
        self.scheduler = LockBasedOTPScheduler(
            self.kernel,
            self.engine,
            keys_of=lambda txn: txn.request.parameters["keys"],
            commit_callback=self._commit,
        )

    def _commit(self, transaction):
        self.committed.append(transaction.transaction_id)
        for key, value in sorted(transaction.workspace.items()):
            self.store.install(
                key,
                value,
                created_index=transaction.global_index,
                created_by=transaction.transaction_id,
            )

    def transaction(self, txn_id, keys):
        request = TransactionRequest(
            transaction_id=txn_id,
            procedure_name="touch",
            parameters={"keys": list(keys)},
            conflict_class="__any__",
            origin_site="N1",
            submitted_at=self.kernel.now(),
        )
        return Transaction(request=request, site_id="N1")

    def opt(self, transaction):
        self.scheduler.on_opt_deliver(transaction)

    def to(self, transaction, index):
        self.scheduler.on_to_deliver(transaction.transaction_id, index)


class TestLockSchedulerBasics:
    def test_single_transaction_executes_and_commits(self):
        harness = LockHarness()
        txn = harness.transaction("T1", ["obj:0", "obj:1"])
        harness.opt(txn)
        assert txn.executing
        harness.to(txn, 0)
        harness.kernel.run_until_idle()
        assert harness.committed == ["T1"]
        assert harness.store.read_latest("obj:0") == 1

    def test_disjoint_transactions_run_concurrently(self):
        harness = LockHarness()
        first = harness.transaction("T1", ["obj:0"])
        second = harness.transaction("T2", ["obj:1"])
        harness.opt(first)
        harness.opt(second)
        assert first.executing and second.executing

    def test_overlapping_transactions_serialise_on_the_shared_object(self):
        harness = LockHarness()
        first = harness.transaction("T1", ["obj:0", "obj:1"])
        second = harness.transaction("T2", ["obj:1", "obj:2"])
        harness.opt(first)
        harness.opt(second)
        assert first.executing
        assert not second.executing
        harness.to(first, 0)
        harness.to(second, 1)
        harness.kernel.run_until_idle()
        assert harness.committed == ["T1", "T2"]

    def test_finer_granularity_allows_more_concurrency_than_class_queues(self):
        """Two transactions of the same 'class' but disjoint objects overlap here."""
        harness = LockHarness(duration=0.010)
        first = harness.transaction("T1", ["obj:0"])
        second = harness.transaction("T2", ["obj:5"])
        harness.opt(first)
        harness.opt(second)
        harness.to(first, 0)
        harness.to(second, 1)
        harness.kernel.run_until_idle()
        # Both executed in parallel: total time is one execution, not two.
        assert harness.kernel.now() == pytest.approx(0.010)
        assert set(harness.committed) == {"T1", "T2"}

    def test_empty_access_set_rejected(self):
        harness = LockHarness()
        with pytest.raises(SchedulerError):
            harness.opt(harness.transaction("T1", []))

    def test_duplicate_opt_delivery_rejected(self):
        harness = LockHarness()
        txn = harness.transaction("T1", ["obj:0"])
        harness.opt(txn)
        with pytest.raises(SchedulerError):
            harness.opt(txn)


class TestLockSchedulerReordering:
    def test_mis_ordered_executing_transaction_is_undone_and_redone(self):
        harness = LockHarness(duration=0.020)
        first = harness.transaction("T1", ["obj:0"])
        second = harness.transaction("T2", ["obj:0"])
        harness.opt(first)   # tentative: T1 before T2
        harness.opt(second)
        assert first.executing
        harness.to(second, 0)  # definitive: T2 first
        assert first.reorder_aborts == 1
        assert second.executing
        harness.to(first, 1)
        harness.kernel.run_until_idle()
        assert harness.committed == ["T2", "T1"]

    def test_mismatch_on_disjoint_objects_costs_nothing(self):
        harness = LockHarness(duration=0.005)
        first = harness.transaction("T1", ["obj:0"])
        second = harness.transaction("T2", ["obj:1"])
        harness.opt(second)  # tentative order: T2 before T1
        harness.opt(first)
        harness.to(first, 0)   # definitive order: T1 before T2
        harness.to(second, 1)
        harness.kernel.run_until_idle()
        assert first.reorder_aborts == 0
        assert second.reorder_aborts == 0
        assert set(harness.committed) == {"T1", "T2"}

    def test_partially_overlapping_chains_commit_in_definitive_order(self):
        harness = LockHarness(duration=0.004)
        t1 = harness.transaction("T1", ["obj:0", "obj:1"])
        t2 = harness.transaction("T2", ["obj:1", "obj:2"])
        t3 = harness.transaction("T3", ["obj:2", "obj:3"])
        for txn in (t1, t2, t3):
            harness.opt(txn)
        # Definitive order reverses the tentative one.
        harness.to(t3, 0)
        harness.to(t2, 1)
        harness.to(t1, 2)
        harness.kernel.run_until_idle()
        harness.scheduler.check_invariants()
        assert harness.committed == ["T3", "T2", "T1"]

    def test_committable_head_is_never_aborted_by_later_to_delivery(self):
        harness = LockHarness(duration=0.050)
        t1 = harness.transaction("T1", ["obj:0"])
        t2 = harness.transaction("T2", ["obj:0"])
        harness.opt(t1)
        harness.opt(t2)
        harness.to(t1, 0)   # T1 committable, still executing
        harness.to(t2, 1)   # must not disturb T1
        assert t1.reorder_aborts == 0
        assert t1.executing
        harness.kernel.run_until_idle()
        assert harness.committed == ["T1", "T2"]

    @given(
        count=st.integers(min_value=1, max_value=6),
        order_seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_all_transactions_commit_and_conflicts_follow_to_order(
        self, count, order_seed
    ):
        """Random overlapping access sets + random definitive order: everything
        commits, and any two transactions sharing an object commit in
        definitive order."""
        import random

        rng = random.Random(order_seed)
        harness = LockHarness(duration=0.002, seed=order_seed)
        transactions = []
        for index in range(count):
            keys = sorted(
                {f"obj:{rng.randrange(6)}" for _ in range(rng.randint(1, 3))}
            )
            transactions.append(harness.transaction(f"T{index}", keys))
        for txn in transactions:
            harness.opt(txn)
        definitive = list(range(count))
        rng.shuffle(definitive)
        for position, txn_index in enumerate(definitive):
            harness.to(transactions[txn_index], position)
        harness.kernel.run_until_idle()
        harness.scheduler.check_invariants()
        assert len(harness.committed) == count
        committed_position = {txn_id: i for i, txn_id in enumerate(harness.committed)}
        to_position = {
            transactions[txn_index].transaction_id: position
            for position, txn_index in enumerate(definitive)
        }
        for i, first in enumerate(transactions):
            for second in transactions[i + 1:]:
                shared = set(first.request.parameters["keys"]) & set(
                    second.request.parameters["keys"]
                )
                if not shared:
                    continue
                assert (
                    committed_position[first.transaction_id]
                    < committed_position[second.transaction_id]
                ) == (
                    to_position[first.transaction_id] < to_position[second.transaction_id]
                )
