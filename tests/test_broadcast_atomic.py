"""Tests for the sequencer (conservative) and optimistic atomic broadcasts.

Includes checks of the five properties of Section 2.1 of the paper via the
verification layer and property-based tests over random traffic patterns.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast import (
    OptimisticAtomicBroadcast,
    SequencerAtomicBroadcast,
    order_agreement,
    tentative_vs_definitive_mismatch,
)
from repro.errors import BroadcastError
from repro.network import LanMulticastLatency, NetworkTransport, UniformLatency
from repro.network.dispatcher import SiteDispatcher
from repro.simulation import SimulationKernel
from repro.verification import check_broadcast_properties


def build_group(protocol, site_count=4, seed=0, latency=None, **kwargs):
    """Build a group of atomic broadcast endpoints of the given protocol."""
    kernel = SimulationKernel(seed=seed)
    transport = NetworkTransport(kernel, latency or LanMulticastLatency())
    sites = [f"N{index + 1}" for index in range(site_count)]
    endpoints = {}
    for site in sites:
        dispatcher = SiteDispatcher(transport, site)
        if protocol == "optimistic":
            endpoint = OptimisticAtomicBroadcast(
                kernel, transport, dispatcher, site, coordinator_site=sites[0], **kwargs
            )
        else:
            endpoint = SequencerAtomicBroadcast(
                kernel, transport, dispatcher, site, sequencer_site=sites[0], **kwargs
            )
        endpoints[site] = endpoint
    return kernel, transport, endpoints


def broadcast_burst(kernel, endpoints, per_site=10, spacing=0.001):
    """Every site broadcasts ``per_site`` messages with the given spacing."""
    expected = []
    for index in range(per_site):
        for site, endpoint in endpoints.items():
            def send(endpoint=endpoint, index=index, site=site):
                expected.append(endpoint.broadcast({"from": site, "n": index}))

            kernel.schedule(index * spacing + 0.0001, send)
    kernel.run_until_idle()
    return expected


class TestSequencerAtomicBroadcast:
    def test_all_sites_to_deliver_everything_in_same_order(self):
        kernel, transport, endpoints = build_group("sequencer")
        expected = broadcast_burst(kernel, endpoints, per_site=8)
        orders = [tuple(endpoint.to_delivery_log) for endpoint in endpoints.values()]
        assert all(order == orders[0] for order in orders)
        assert set(orders[0]) == set(expected)

    def test_opt_and_to_delivery_are_simultaneous(self):
        kernel, transport, endpoints = build_group("sequencer")
        broadcast_burst(kernel, endpoints, per_site=5)
        for endpoint in endpoints.values():
            for message_id in endpoint.to_delivery_log:
                record = endpoint.message(message_id)
                assert record.ordering_delay == pytest.approx(0.0)

    def test_tentative_order_equals_definitive_order(self):
        kernel, transport, endpoints = build_group("sequencer")
        broadcast_burst(kernel, endpoints, per_site=5)
        for endpoint in endpoints.values():
            assert endpoint.opt_delivery_log == endpoint.to_delivery_log

    def test_properties_hold(self):
        kernel, transport, endpoints = build_group("sequencer")
        expected = broadcast_burst(kernel, endpoints, per_site=6)
        report = check_broadcast_properties(endpoints, expected_broadcasts=expected)
        report.raise_if_violated()

    def test_is_sequencer_flag(self):
        kernel, transport, endpoints = build_group("sequencer")
        assert endpoints["N1"].is_sequencer
        assert not endpoints["N2"].is_sequencer


class TestOptimisticAtomicBroadcast:
    def test_opt_delivery_precedes_to_delivery(self):
        kernel, transport, endpoints = build_group("optimistic")
        broadcast_burst(kernel, endpoints, per_site=10)
        for endpoint in endpoints.values():
            for message_id in endpoint.to_delivery_log:
                record = endpoint.message(message_id)
                assert record.opt_delivered_at is not None
                assert record.to_delivered_at is not None
                assert record.opt_delivered_at <= record.to_delivered_at

    def test_non_coordinator_sites_pay_an_ordering_delay(self):
        kernel, transport, endpoints = build_group("optimistic")
        broadcast_burst(kernel, endpoints, per_site=10)
        delays = [
            endpoints["N3"].message(message_id).ordering_delay
            for message_id in endpoints["N3"].to_delivery_log
        ]
        assert all(delay >= 0.0 for delay in delays)
        assert any(delay > 0.0 for delay in delays)

    def test_global_order_identical_at_all_sites(self):
        kernel, transport, endpoints = build_group("optimistic")
        expected = broadcast_burst(kernel, endpoints, per_site=12, spacing=0.0005)
        orders = [tuple(endpoint.to_delivery_log) for endpoint in endpoints.values()]
        assert all(order == orders[0] for order in orders)
        assert set(orders[0]) == set(expected)

    def test_properties_hold_under_bursty_traffic(self):
        kernel, transport, endpoints = build_group("optimistic")
        expected = broadcast_burst(kernel, endpoints, per_site=15, spacing=0.0002)
        report = check_broadcast_properties(endpoints, expected_broadcasts=expected)
        report.raise_if_violated()

    def test_tentative_orders_may_differ_but_definitive_do_not(self):
        kernel, transport, endpoints = build_group(
            "optimistic", latency=LanMulticastLatency(receiver_jitter_mean=0.0005)
        )
        broadcast_burst(kernel, endpoints, per_site=20, spacing=0.0005)
        tentative_orders = {tuple(e.opt_delivery_log) for e in endpoints.values()}
        definitive_orders = {tuple(e.to_delivery_log) for e in endpoints.values()}
        assert len(definitive_orders) == 1
        # With this much jitter the tentative orders essentially never agree
        # across all four sites.
        assert len(tentative_orders) > 1

    def test_mismatch_fraction_increases_with_jitter(self):
        fractions = []
        for jitter in (0.00002, 0.0008):
            kernel, transport, endpoints = build_group(
                "optimistic",
                seed=3,
                latency=LanMulticastLatency(receiver_jitter_mean=jitter),
            )
            broadcast_burst(kernel, endpoints, per_site=25, spacing=0.001)
            site = endpoints["N4"]
            fractions.append(
                tentative_vs_definitive_mismatch(site.opt_delivery_log, site.to_delivery_log)
            )
        assert fractions[0] < fractions[1]

    def test_unknown_ordering_mode_rejected(self):
        kernel = SimulationKernel()
        transport = NetworkTransport(kernel, LanMulticastLatency())
        dispatcher = SiteDispatcher(transport, "N1")
        with pytest.raises(BroadcastError):
            OptimisticAtomicBroadcast(
                kernel, transport, dispatcher, "N1",
                coordinator_site="N1", ordering_mode="bogus",
            )

    def test_invalid_voting_timeout_rejected(self):
        kernel = SimulationKernel()
        transport = NetworkTransport(kernel, LanMulticastLatency())
        dispatcher = SiteDispatcher(transport, "N1")
        with pytest.raises(BroadcastError):
            OptimisticAtomicBroadcast(
                kernel, transport, dispatcher, "N1",
                coordinator_site="N1", voting_timeout=0.0,
            )

    def test_coordinator_handover_confirms_outstanding_messages(self):
        kernel, transport, endpoints = build_group("optimistic", site_count=3)
        # Send a burst, then pretend the coordinator changed to N2 and make
        # sure new messages still get confirmed by the new coordinator.
        broadcast_burst(kernel, endpoints, per_site=3)
        for endpoint in endpoints.values():
            endpoint.set_coordinator("N2")
        more = [endpoints["N3"].broadcast({"late": index}) for index in range(3)]
        kernel.run_until_idle()
        for endpoint in endpoints.values():
            for message_id in more:
                assert message_id in endpoint.to_delivery_log


class TestVotingMode:
    def test_voting_mode_reaches_same_definitive_order(self):
        kernel, transport, endpoints = build_group(
            "optimistic", ordering_mode="voting", voting_timeout=0.02
        )
        expected = broadcast_burst(kernel, endpoints, per_site=8)
        orders = [tuple(endpoint.to_delivery_log) for endpoint in endpoints.values()]
        assert all(order == orders[0] for order in orders)
        assert set(orders[0]) == set(expected)

    def test_voting_mode_records_fast_and_conservative_paths(self):
        kernel, transport, endpoints = build_group(
            "optimistic", ordering_mode="voting", voting_timeout=0.02
        )
        broadcast_burst(kernel, endpoints, per_site=10, spacing=0.002)
        coordinator = endpoints["N1"]
        total = coordinator.fast_path_confirmations + coordinator.conservative_confirmations
        assert total == len(coordinator.to_delivery_log)
        assert coordinator.fast_path_confirmations > 0

    def test_voting_mode_has_higher_ordering_delay_than_sequencer_mode(self):
        def mean_delay(mode):
            kernel, transport, endpoints = build_group(
                "optimistic", ordering_mode=mode, seed=9
            )
            broadcast_burst(kernel, endpoints, per_site=10, spacing=0.002)
            delays = [
                endpoints["N2"].message(mid).ordering_delay
                for mid in endpoints["N2"].to_delivery_log
            ]
            return sum(delays) / len(delays)

        assert mean_delay("voting") > mean_delay("sequencer")


class TestPropertyBased:
    @given(
        per_site=st.integers(min_value=1, max_value=8),
        spacing_us=st.integers(min_value=50, max_value=3000),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_global_order_and_agreement_hold_for_random_traffic(
        self, per_site, spacing_us, seed
    ):
        kernel, transport, endpoints = build_group("optimistic", seed=seed, site_count=3)
        expected = broadcast_burst(
            kernel, endpoints, per_site=per_site, spacing=spacing_us / 1_000_000.0
        )
        report = check_broadcast_properties(endpoints, expected_broadcasts=expected)
        assert report.ok, report.violations
