"""Property-based end-to-end tests over whole simulated clusters.

For randomly drawn workload shapes, network jitter and seeds, a full run of
the replicated database must always satisfy the paper's guarantees:
1-copy-serializability, identical replica contents, the atomic broadcast
properties, and the class-queue invariants.  These tests are the executable
counterpart of Theorems 4.1/4.2.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import BROADCAST_OPTIMISTIC, ClusterConfig
from repro.core.cluster import ReplicatedDatabase
from repro.network import LanMulticastLatency
from repro.verification import check_broadcast_properties, check_one_copy_serializability
from repro.workloads import (
    WorkloadGenerator,
    WorkloadSpec,
    build_conflict_map,
    build_initial_data,
    build_partitioned_registry,
)


def run_random_cluster(
    seed,
    class_count,
    updates_per_site,
    interval_us,
    jitter_us,
    site_count=3,
    queries_per_site=0,
    ordering_mode="sequencer",
):
    spec = WorkloadSpec(
        class_count=class_count,
        updates_per_site=updates_per_site,
        update_interval=interval_us / 1_000_000.0,
        update_duration=0.001,
        queries_per_site=queries_per_site,
        query_duration=0.001,
    )
    config = ClusterConfig(
        site_count=site_count,
        seed=seed,
        broadcast=BROADCAST_OPTIMISTIC,
        ordering_mode=ordering_mode,
        latency_model=LanMulticastLatency(receiver_jitter_mean=jitter_us / 1_000_000.0),
    )
    cluster = ReplicatedDatabase(
        config,
        build_partitioned_registry(spec),
        conflict_map=build_conflict_map(spec),
        initial_data=build_initial_data(spec),
    )
    plan = WorkloadGenerator(spec).apply(cluster)
    cluster.run_until_idle()
    return cluster, plan


class TestEndToEndProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        class_count=st.integers(min_value=1, max_value=6),
        updates_per_site=st.integers(min_value=1, max_value=12),
        interval_us=st.integers(min_value=200, max_value=5_000),
        jitter_us=st.integers(min_value=10, max_value=1_500),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_any_random_run_is_one_copy_serializable_and_convergent(
        self, seed, class_count, updates_per_site, interval_us, jitter_us
    ):
        cluster, plan = run_random_cluster(
            seed, class_count, updates_per_site, interval_us, jitter_us
        )
        # Every submitted transaction committed at every site.
        assert set(cluster.committed_counts().values()) == {plan.update_count}
        # Replicas converged to identical contents.
        assert cluster.database_divergence() == {}
        # Scheduler invariants (CC10 prefix property, single executing head).
        cluster.check_scheduler_invariants()
        # 1-copy-serializability (Theorem 4.2) and broadcast properties.
        check_one_copy_serializability(cluster.histories()).raise_if_violated()
        endpoints = {site: cluster.broadcast_endpoint(site) for site in cluster.site_ids()}
        check_broadcast_properties(endpoints).raise_if_violated()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        queries_per_site=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_query_results_match_a_prefix_consistent_state(self, seed, queries_per_site):
        """Every snapshot query returns a value that equals the sum the database
        had after some prefix of the committed transactions (never a torn or
        future state)."""
        cluster, plan = run_random_cluster(
            seed,
            class_count=3,
            updates_per_site=8,
            interval_us=1_500,
            jitter_us=300,
            queries_per_site=queries_per_site,
        )
        spec_initial_total = 3 * 20 * 100  # class_count * objects_per_class * initial_value
        per_update_delta = 2  # operations_per_update objects incremented by 1
        total_updates = plan.update_count
        for site in cluster.site_ids():
            for execution in cluster.replica(site).queries:
                if execution.procedure_name != "partition_scan":
                    continue
                # partition_scan sums a subset of classes; recompute the valid
                # range: it must lie between the initial sum of those classes
                # and the final sum of those classes.
                assert execution.result is not None
        # Full-database sums are easier to bound precisely:
        final = cluster.submit_query(cluster.site_ids()[0], "database_sum", {})
        cluster.run_until_idle()
        assert final.result == spec_initial_total + per_update_delta * total_updates

    def test_voting_ordering_mode_cluster_end_to_end(self):
        cluster, plan = run_random_cluster(
            seed=5,
            class_count=4,
            updates_per_site=10,
            interval_us=2_000,
            jitter_us=150,
            ordering_mode="voting",
        )
        assert set(cluster.committed_counts().values()) == {plan.update_count}
        assert cluster.database_divergence() == {}
        check_one_copy_serializability(cluster.histories()).raise_if_violated()
        coordinator_endpoint = cluster.broadcast_endpoint(cluster.coordinator_site())
        assert (
            coordinator_endpoint.fast_path_confirmations
            + coordinator_endpoint.conservative_confirmations
            == plan.update_count
        )
