"""Deterministic chaos harness: every fault scenario must preserve correctness.

Each test run injects a fault schedule (crashes, failovers, whole-shard
outages, partitions, latency spikes) into a sharded cluster under load and
then verifies the full property stack:

* per-shard 1-copy-serializability (including the five broadcast properties
  of every shard's group),
* cross-shard query snapshot consistency,
* eventual termination — every submitted transaction commits at its origin,
  every replica group converges, every query completes once faults cease.

The runs are deterministic: the same seed must reproduce the same
injected-fault trace and the same commit outcome, so any failure here is a
repro, not a flake.  The module is marker-gated (``pytest -m chaos``) so CI
can run the chaos suite as its own job.
"""

import pytest

from repro.chaos import SCENARIOS, run_chaos_scenario

pytestmark = pytest.mark.chaos

#: Seed sweep: every scenario must hold across all of them.
SEEDS = (1, 2, 3, 4, 5)

SCENARIO_NAMES = sorted(SCENARIOS)


def test_scenario_library_covers_the_required_fault_modes():
    assert len(SCENARIO_NAMES) >= 4
    assert "sequencer_failover_under_load" in SCENARIOS
    assert "rolling_shard_crashes" in SCENARIOS
    assert "whole_shard_outage" in SCENARIOS
    assert "partition_during_optimistic_delivery" in SCENARIOS


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def test_scenario_preserves_all_properties(scenario, seed):
    result = run_chaos_scenario(scenario, seed=seed)
    result.raise_if_violated()
    assert result.one_copy_ok
    assert result.queries_consistent
    assert result.liveness_ok
    # Faults actually fired (and were reverted), and none of them cost a
    # single transaction.
    assert result.faults_injected >= 1
    assert len(result.trace) > result.faults_injected  # reverts traced too
    assert result.committed == result.submitted_updates
    # The run only terminated after the plan stopped injecting faults.
    assert result.duration > result.faults_cease_at


@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def test_same_seed_reproduces_the_same_fault_trace(scenario):
    first = run_chaos_scenario(scenario, seed=3)
    second = run_chaos_scenario(scenario, seed=3)
    assert first.trace_signature() == second.trace_signature()
    assert first.committed == second.committed
    assert first.duration == second.duration


def test_rolling_crash_targets_follow_the_seed():
    # The rolling scenario draws its victims from the seeded chaos stream;
    # the sweep must hit more than one distinct victim set across seeds
    # (otherwise the "random" target would be a constant).
    victim_sets = set()
    for seed in SEEDS:
        result = run_chaos_scenario("rolling_shard_crashes", seed=seed)
        victims = tuple(
            fault.sites for fault in result.trace if fault.action == "crash"
        )
        victim_sets.add(victims)
    assert len(victim_sets) > 1


def test_unknown_scenario_name_rejected():
    from repro.errors import ChaosError

    with pytest.raises(ChaosError):
        run_chaos_scenario("does-not-exist")
