"""Tier-1 guard for the docs site.

Runs the same checker as the CI docs job (``tools/check_docs.py``): every
internal link in ``README.md``/``docs/*.md`` must resolve, and every fenced
``>>>`` example in ``docs/*.md`` must pass under doctest.  Keeping this in
the tier-1 suite means a stale example or a broken cross-link fails locally
before it fails in CI.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_checker():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_docs_site_exists():
    for page in ("architecture.md", "recovery.md", "experiments.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} is missing"


def test_docs_links_and_doctests_are_clean():
    completed = run_checker()
    assert completed.returncode == 0, (
        f"docs checker failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert "docs OK" in completed.stdout
