"""Unit tests for latency models and message envelopes."""

import pytest

from repro.errors import NetworkError
from repro.network.latency import (
    ConstantLatency,
    LanMulticastLatency,
    NormalLatency,
    UniformLatency,
    WanLatency,
)
from repro.network.message import Envelope, next_envelope_id
from repro.simulation.randomness import RandomSource


@pytest.fixture
def stream():
    return RandomSource(1).stream("latency-test")


class TestConstantLatency:
    def test_sample_is_constant(self, stream):
        model = ConstantLatency(0.002)
        assert model.sample("N1", "N2", stream) == pytest.approx(0.002)

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            ConstantLatency(-0.001)


class TestUniformLatency:
    def test_sample_within_bounds(self, stream):
        model = UniformLatency(0.001, 0.002)
        for _ in range(100):
            assert 0.001 <= model.sample("N1", "N2", stream) <= 0.002

    def test_invalid_bounds_rejected(self):
        with pytest.raises(NetworkError):
            UniformLatency(0.002, 0.001)


class TestNormalLatency:
    def test_sample_respects_minimum(self, stream):
        model = NormalLatency(mean=0.001, stddev=0.01, minimum=0.0005)
        assert all(model.sample("N1", "N2", stream) >= 0.0005 for _ in range(200))

    def test_negative_parameters_rejected(self):
        with pytest.raises(NetworkError):
            NormalLatency(mean=-0.001)


class TestLanMulticastLatency:
    def test_shared_delay_at_least_propagation(self, stream):
        model = LanMulticastLatency(propagation=0.0004)
        assert all(model.shared_delay(stream) >= 0.0004 for _ in range(100))

    def test_receiver_delay_nonnegative(self, stream):
        model = LanMulticastLatency()
        assert all(model.receiver_delay("N1", "N2", stream) >= 0.0 for _ in range(100))

    def test_zero_receiver_jitter_means_identical_arrival(self, stream):
        model = LanMulticastLatency(receiver_jitter_mean=0.0)
        delays = {model.receiver_delay("N1", f"N{i}", stream) for i in range(2, 6)}
        assert delays == {0.0}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(NetworkError):
            LanMulticastLatency(propagation=-1.0)
        with pytest.raises(NetworkError):
            LanMulticastLatency(receiver_jitter_mean=-0.1)


class TestWanLatency:
    def test_sample_at_least_base(self, stream):
        model = WanLatency(base=0.02, variance=0.01)
        assert all(model.sample("N1", "N2", stream) >= 0.02 for _ in range(100))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(NetworkError):
            WanLatency(base=-0.01)


class TestGeoTopology:
    def build(self):
        from repro.network.latency import GeoTopology, LinkProfile

        return GeoTopology(
            {"N1": "eu", "N2": "eu", "N3": "us"},
            intra=LinkProfile(base=0.0005, jitter=0.0001),
            cross=LinkProfile(base=0.010, jitter=0.001),
        )

    def test_same_region_uses_intra_profile(self):
        topology = self.build()
        assert topology.profile("N1", "N2").base == 0.0005

    def test_cross_region_uses_cross_profile(self):
        topology = self.build()
        assert topology.profile("N1", "N3").base == 0.010
        assert topology.profile("N3", "N1").base == 0.010

    def test_region_pair_override_wins(self):
        from repro.network.latency import GeoTopology, LinkProfile

        topology = GeoTopology(
            {"N1": "eu", "N2": "us", "N3": "ap"},
            intra=LinkProfile(base=0.0005),
            cross=LinkProfile(base=0.010),
            overrides={("eu", "us"): LinkProfile(base=0.040)},
        )
        # The override applies in both directions unless a directed one
        # exists for the opposite ordering; other pairs keep the default.
        assert topology.profile("N1", "N2").base == 0.040
        assert topology.profile("N2", "N1").base == 0.040
        assert topology.profile("N1", "N3").base == 0.010

    def test_directed_override_beats_undirected(self):
        from repro.network.latency import GeoTopology, LinkProfile

        topology = GeoTopology(
            {"N1": "eu", "N2": "us"},
            intra=LinkProfile(base=0.0005),
            cross=LinkProfile(base=0.010),
            overrides={
                ("eu", "us"): LinkProfile(base=0.030),
                ("us", "eu"): LinkProfile(base=0.070),
            },
        )
        assert topology.profile("N1", "N2").base == 0.030
        assert topology.profile("N2", "N1").base == 0.070

    def test_striped_assignment_round_robins_by_site_index(self):
        from repro.network.latency import GeoTopology, LinkProfile

        topology = GeoTopology.striped(
            ("eu", "us"),
            intra=LinkProfile(base=0.0005),
            cross=LinkProfile(base=0.010),
        )
        assert topology.region_of("N1") == "eu"
        assert topology.region_of("N2") == "us"
        assert topology.region_of("N3") == "eu"
        # Sharded site ids stripe by the numeric suffix, prefix-agnostic.
        assert topology.region_of("S2:N2") == "us"

    def test_unknown_site_rejected(self):
        topology = self.build()
        with pytest.raises(NetworkError):
            topology.region_of("garbage")

    def test_one_way_spread(self):
        topology = self.build()
        assert topology.one_way_spread() == pytest.approx(0.010 - 0.0005)

    def test_negative_profile_rejected(self):
        from repro.network.latency import LinkProfile

        with pytest.raises(NetworkError):
            LinkProfile(base=-0.001)
        with pytest.raises(NetworkError):
            LinkProfile(base=0.001, jitter=-0.1)


class TestGeoLatency:
    def test_receiver_delay_tracks_the_link_profile(self, stream):
        from repro.network.latency import GeoLatency, GeoTopology, LinkProfile

        topology = GeoTopology(
            {"N1": "eu", "N2": "eu", "N3": "us"},
            intra=LinkProfile(base=0.0005, jitter=0.0),
            cross=LinkProfile(base=0.020, jitter=0.0),
        )
        model = GeoLatency(topology)
        # Zero jitter makes delays exact: intra fast, cross slow, per link.
        assert model.receiver_delay("N1", "N2", stream) == pytest.approx(0.0005)
        assert model.receiver_delay("N1", "N3", stream) == pytest.approx(0.020)

    def test_jitter_adds_on_top_of_base(self, stream):
        from repro.network.latency import GeoLatency, GeoTopology, LinkProfile

        topology = GeoTopology(
            {"N1": "eu", "N2": "us"},
            intra=LinkProfile(base=0.0005, jitter=0.0001),
            cross=LinkProfile(base=0.020, jitter=0.002),
        )
        model = GeoLatency(topology)
        samples = [model.receiver_delay("N1", "N2", stream) for _ in range(200)]
        assert all(sample >= 0.020 for sample in samples)
        assert len(set(samples)) > 1  # jitter actually varies


class TestEnvelope:
    def test_next_envelope_id_unique(self):
        ids = {next_envelope_id("N1") for _ in range(100)}
        assert len(ids) == 100

    def test_with_destination_copies_fields(self):
        envelope = Envelope(
            envelope_id="e1",
            sender="N1",
            destination=None,
            payload={"x": 1},
            kind="data",
            sent_at=1.5,
        )
        addressed = envelope.with_destination("N3")
        assert addressed.destination == "N3"
        assert addressed.envelope_id == "e1"
        assert addressed.sender == "N1"
        assert addressed.payload == {"x": 1}
        assert addressed.sent_at == 1.5

    def test_sort_key_is_deterministic(self):
        envelope = Envelope("e1", "N1", "N2", None)
        assert envelope.sort_key() == ("e1", "N1")
