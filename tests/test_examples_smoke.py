"""Smoke tests: every example script must run end to end.

The examples double as documentation; they are executed here (with their
output captured) so that API drift breaks the build instead of the docs.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_without_errors(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_reports_consistent_replicas(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "Replica divergence            : none" in output
    assert "account:alice" in output


def test_banking_example_reports_serializable_histories(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "banking_replication.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert output.count("1-copy-serializable        : True") == 2
    assert "money conserved everywhere : True" in output


def test_ecommerce_example_preserves_stock_invariant(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "read_mostly_ecommerce.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "stock + sold == initial stock : True" in output
    assert "replicas identical            : True" in output
