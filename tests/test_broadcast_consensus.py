"""Unit tests for the rotating-coordinator consensus substrate."""

import pytest

from repro.broadcast.consensus import CONSENSUS_KIND, ConsensusParticipant
from repro.errors import ConsensusError
from repro.failure import CrashManager
from repro.network import NetworkTransport, UniformLatency
from repro.network.dispatcher import SiteDispatcher
from repro.simulation import SimulationKernel


def build_group(site_count=3, seed=0, round_timeout=0.05):
    kernel = SimulationKernel(seed=seed)
    transport = NetworkTransport(kernel, UniformLatency(0.001, 0.003))
    sites = [f"N{index + 1}" for index in range(site_count)]
    participants = {}
    decisions = {}
    for site in sites:
        dispatcher = SiteDispatcher(transport, site)
        participant = ConsensusParticipant(
            kernel, transport, site, sites, round_timeout=round_timeout
        )
        dispatcher.register_kind(CONSENSUS_KIND, participant.on_envelope)
        decisions[site] = {}
        participant.add_decision_listener(
            lambda instance, value, site=site: decisions[site].__setitem__(instance, value)
        )
        participants[site] = participant
    return kernel, transport, participants, decisions


class TestConsensusBasics:
    def test_all_participants_decide_the_same_value(self):
        kernel, transport, participants, decisions = build_group()
        for site, participant in participants.items():
            participant.propose("instance-1", f"value-from-{site}")
        kernel.run_until_idle()
        decided = {decisions[site]["instance-1"] for site in participants}
        assert len(decided) == 1

    def test_decided_value_was_proposed_by_someone(self):
        kernel, transport, participants, decisions = build_group()
        proposals = {}
        for site, participant in participants.items():
            proposals[site] = f"value-from-{site}"
            participant.propose("instance-1", proposals[site])
        kernel.run_until_idle()
        decided = decisions["N1"]["instance-1"]
        assert decided in proposals.values()

    def test_multiple_independent_instances(self):
        kernel, transport, participants, decisions = build_group()
        for instance in ["a", "b", "c"]:
            for site, participant in participants.items():
                participant.propose(instance, f"{instance}:{site}")
        kernel.run_until_idle()
        for instance in ["a", "b", "c"]:
            values = {decisions[site][instance] for site in participants}
            assert len(values) == 1

    def test_decision_is_queryable(self):
        kernel, transport, participants, decisions = build_group()
        for site, participant in participants.items():
            participant.propose("q", site)
        kernel.run_until_idle()
        assert participants["N1"].decided("q")
        assert participants["N1"].decision_for("q") == decisions["N1"]["q"]

    def test_decision_for_undecided_instance_raises(self):
        kernel, transport, participants, decisions = build_group()
        with pytest.raises(ConsensusError):
            participants["N1"].decision_for("never-proposed")

    def test_membership_validation(self):
        kernel = SimulationKernel()
        transport = NetworkTransport(kernel, UniformLatency(0.001, 0.002))
        SiteDispatcher(transport, "N1")
        with pytest.raises(ConsensusError):
            ConsensusParticipant(kernel, transport, "N9", ["N1", "N2"])

    def test_invalid_round_timeout_rejected(self):
        kernel = SimulationKernel()
        transport = NetworkTransport(kernel, UniformLatency(0.001, 0.002))
        SiteDispatcher(transport, "N1")
        with pytest.raises(ConsensusError):
            ConsensusParticipant(kernel, transport, "N1", ["N1"], round_timeout=0.0)


class TestConsensusWithFailures:
    def test_coordinator_crash_before_proposing_still_decides(self):
        kernel, transport, participants, decisions = build_group(site_count=5)
        crash_manager = CrashManager(kernel, transport)
        # Crash the round-0 coordinator (N1) before anything happens.
        crash_manager.crash_now("N1")
        for site in ["N2", "N3", "N4", "N5"]:
            participants[site].propose("crashy", f"value-{site}")
        kernel.run(until=3.0)
        surviving = ["N2", "N3", "N4", "N5"]
        decided_values = {
            decisions[site].get("crashy") for site in surviving if "crashy" in decisions[site]
        }
        assert len(decided_values) == 1
        assert None not in decided_values
        assert all("crashy" in decisions[site] for site in surviving)

    def test_minority_crash_does_not_block_agreement(self):
        kernel, transport, participants, decisions = build_group(site_count=5)
        crash_manager = CrashManager(kernel, transport)
        for site, participant in participants.items():
            participant.propose("majority", f"value-{site}")
        kernel.run(until=0.002)
        crash_manager.crash_now("N5")
        kernel.run(until=3.0)
        surviving = ["N1", "N2", "N3", "N4"]
        assert all("majority" in decisions[site] for site in surviving)
        assert len({decisions[site]["majority"] for site in surviving}) == 1

    def test_coordinator_of_rotates_with_round(self):
        kernel, transport, participants, decisions = build_group(site_count=3)
        participant = participants["N1"]
        assert participant.coordinator_of(0) == "N1"
        assert participant.coordinator_of(1) == "N2"
        assert participant.coordinator_of(3) == "N1"
