"""Additional coverage for replica-manager internals and cluster options."""

import pytest

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.broadcast.spontaneous import receive_sequences
from repro.harness.runner import FAST_EXPERIMENTS, FULL_EXPERIMENTS


def simple_registry():
    registry = ProcedureRegistry()

    @registry.procedure("set_value", conflict_class="C_main", duration=0.002)
    def set_value(ctx, params):
        ctx.write("main:value", params["value"])
        return params["value"]

    @registry.procedure("get_value", is_query=True, duration=0.001)
    def get_value(ctx, params):
        return ctx.read("main:value")

    return registry


def build_cluster(**overrides):
    overrides.setdefault("site_count", 3)
    overrides.setdefault("seed", 1)
    config = ClusterConfig(**overrides)
    return ReplicatedDatabase(config, simple_registry(), initial_data={"main:value": 0})


class TestReplicaInternals:
    def test_ordering_delay_metric_recorded_for_optimistic_broadcast(self):
        cluster = build_cluster()
        cluster.submit("N2", "set_value", {"value": 7})
        cluster.run_until_idle()
        # Non-coordinator sites observe a strictly positive Opt->TO delay.
        summary = cluster.replica("N3").metrics.latency_summary("ordering_delay")
        assert summary.count == 1
        assert summary.mean > 0.0

    def test_commit_metrics_and_submitted_records(self):
        cluster = build_cluster()
        txn_id = cluster.submit("N1", "set_value", {"value": 3})
        cluster.run_until_idle()
        replica = cluster.replica("N1")
        assert replica.metrics.count("commits") == 1
        assert replica.metrics.count("transactions_submitted") == 1
        submitted = replica.submitted[txn_id]
        assert submitted.latency is not None and submitted.latency > 0.0

    def test_redo_log_populated_on_every_commit(self):
        cluster = build_cluster()
        cluster.submit("N1", "set_value", {"value": 5})
        cluster.submit("N1", "set_value", {"value": 9})
        cluster.run_until_idle()
        assert len(cluster.replica("N2").redo_log) == 2

    def test_snapshot_manager_tracks_last_committed_index(self):
        cluster = build_cluster()
        for value in range(4):
            cluster.submit("N1", "set_value", {"value": value})
        cluster.run_until_idle()
        assert cluster.replica("N3").snapshot_manager.last_processed_index == 3

    def test_query_after_updates_sees_latest_committed_value(self):
        cluster = build_cluster()
        cluster.submit("N1", "set_value", {"value": 42})
        cluster.run_until_idle()
        query = cluster.submit_query("N3", "get_value", {})
        cluster.run_until_idle()
        assert query.result == 42

    def test_commit_listener_sees_remote_transactions_too(self):
        cluster = build_cluster()
        seen = []
        cluster.replica("N3").add_commit_listener(lambda txn: seen.append(txn.transaction_id))
        txn_id = cluster.submit("N1", "set_value", {"value": 1})
        cluster.run_until_idle()
        assert seen == [txn_id]


class TestClusterOptions:
    def test_record_deliveries_populates_transport_log(self):
        cluster = build_cluster(record_deliveries=True)
        cluster.submit("N1", "set_value", {"value": 1})
        cluster.run_until_idle()
        sequences = receive_sequences(cluster.transport.delivery_log, kind="optabcast.data")
        assert set(sequences) == {"N1", "N2", "N3"}

    def test_duration_scale_slows_down_execution(self):
        fast = build_cluster(seed=2)
        slow = build_cluster(seed=2, duration_scale=5.0)
        for cluster in (fast, slow):
            cluster.submit("N1", "set_value", {"value": 1})
            cluster.run_until_idle()
        assert slow.all_client_latencies()[0] > fast.all_client_latencies()[0]

    def test_cpu_count_limits_concurrent_executions(self):
        registry = ProcedureRegistry()

        @registry.procedure("spin", conflict_class=lambda p: f"C{p['n']}", duration=0.010)
        def spin(ctx, params):
            ctx.write(f"slot:{params['n']}", 1)

        cluster = ReplicatedDatabase(
            ClusterConfig(site_count=1, seed=3, cpu_count=1),
            registry,
            initial_data={f"slot:{index}": 0 for index in range(4)},
        )
        for index in range(4):
            cluster.submit("N1", "spin", {"n": index})
        cluster.run_until_idle()
        # With a single CPU the four 10 ms executions are serialised.
        assert cluster.now >= 0.040


class TestHarnessRegistry:
    def test_fast_and_full_registries_cover_the_same_experiments(self):
        assert set(FAST_EXPERIMENTS) == set(FULL_EXPERIMENTS)

    def test_every_design_experiment_has_a_benchmark_file(self):
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        bench_files = {path.name for path in bench_dir.glob("test_bench_*.py")}
        expected = {
            "test_bench_figure1_spontaneous_order.py",
            "test_bench_overlap_latency.py",
            "test_bench_conflict_aborts.py",
            "test_bench_lazy_comparison.py",
            "test_bench_queries.py",
            "test_bench_optimism_tradeoff.py",
            "test_bench_scalability.py",
            "test_bench_ordering_mode_ablation.py",
        }
        assert expected <= bench_files
