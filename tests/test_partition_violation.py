"""Tests for the disjoint-partition safety check (paper Section 2.3).

Two update transactions of *different* conflict classes must never update the
same object — the concurrency-control model relies on disjoint partitions.
The replica manager detects such misconfigured workloads and fails loudly
instead of silently producing divergent replicas.
"""

import pytest

from repro import ClusterConfig, ConflictClassMap, ProcedureRegistry, ReplicatedDatabase
from repro.errors import ReplicationError


def registry_with_shared_counter():
    registry = ProcedureRegistry()

    @registry.procedure("bump_a", conflict_class="C_a", duration=0.001)
    def bump_a(ctx, params):
        ctx.increment("a:value", 1)
        ctx.increment("shared:counter", 1)

    @registry.procedure("bump_b", conflict_class="C_b", duration=0.001)
    def bump_b(ctx, params):
        ctx.increment("b:value", 1)
        ctx.increment("shared:counter", 1)

    return registry


def test_cross_partition_write_is_rejected_with_clear_error():
    conflict_map = ConflictClassMap()
    conflict_map.define("C_a", key_prefixes=("a:",))
    conflict_map.define("C_b", key_prefixes=("b:", "shared:"))
    cluster = ReplicatedDatabase(
        ClusterConfig(site_count=2, seed=1),
        registry_with_shared_counter(),
        conflict_map=conflict_map,
        initial_data={"a:value": 0, "b:value": 0, "shared:counter": 0},
    )
    cluster.submit("N1", "bump_a", {})
    with pytest.raises(ReplicationError, match="partition"):
        cluster.run_until_idle()


def test_well_partitioned_workload_is_unaffected():
    registry = ProcedureRegistry()

    @registry.procedure("bump_a", conflict_class="C_a", duration=0.001)
    def bump_a(ctx, params):
        ctx.increment("a:value", 1)

    conflict_map = ConflictClassMap()
    conflict_map.define("C_a", key_prefixes=("a:",))
    cluster = ReplicatedDatabase(
        ClusterConfig(site_count=2, seed=1),
        registry,
        conflict_map=conflict_map,
        initial_data={"a:value": 0},
    )
    cluster.submit("N1", "bump_a", {})
    cluster.run_until_idle()
    assert cluster.replica("N2").database_contents()["a:value"] == 1
