"""Unit tests for the simulation kernel and timers."""

import pytest

from repro.errors import SimulationError
from repro.simulation import PeriodicTimer, SimulationKernel, Timeout


class TestScheduling:
    def test_schedule_runs_callback_at_right_time(self):
        kernel = SimulationKernel()
        times = []
        kernel.schedule(0.5, lambda: times.append(kernel.now()))
        kernel.run_until_idle()
        assert times == [0.5]

    def test_events_run_in_time_order(self):
        kernel = SimulationKernel()
        order = []
        kernel.schedule(0.3, lambda: order.append("third"))
        kernel.schedule(0.1, lambda: order.append("first"))
        kernel.schedule(0.2, lambda: order.append("second"))
        kernel.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_equal_times_run_in_fifo_order(self):
        kernel = SimulationKernel()
        order = []
        for index in range(5):
            kernel.schedule(1.0, lambda index=index: order.append(index))
        kernel.run_until_idle()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute_time(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule_at(2.0, lambda: seen.append(kernel.now()))
        kernel.run_until_idle()
        assert seen == [2.0]

    def test_negative_delay_rejected(self):
        kernel = SimulationKernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        kernel = SimulationKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run_until_idle()
        with pytest.raises(SimulationError):
            kernel.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callbacks(self):
        kernel = SimulationKernel()
        seen = []

        def outer():
            seen.append(("outer", kernel.now()))
            kernel.schedule(0.5, inner)

        def inner():
            seen.append(("inner", kernel.now()))

        kernel.schedule(1.0, outer)
        kernel.run_until_idle()
        assert seen == [("outer", 1.0), ("inner", 1.5)]

    def test_cancel_prevents_execution(self):
        kernel = SimulationKernel()
        seen = []
        event = kernel.schedule(1.0, lambda: seen.append("fired"))
        kernel.cancel(event)
        kernel.run_until_idle()
        assert seen == []


class TestRunControl:
    def test_run_until_time_stops_and_advances_clock(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule(1.0, lambda: seen.append(1.0))
        kernel.schedule(5.0, lambda: seen.append(5.0))
        kernel.run(until=2.0)
        assert seen == [1.0]
        assert kernel.now() == 2.0
        kernel.run_until_idle()
        assert seen == [1.0, 5.0]

    def test_max_events_limit(self):
        kernel = SimulationKernel()
        seen = []
        for index in range(10):
            kernel.schedule(index * 0.1 + 0.1, lambda index=index: seen.append(index))
        kernel.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_stop_from_callback(self):
        kernel = SimulationKernel()
        seen = []

        def first():
            seen.append("first")
            kernel.stop()

        kernel.schedule(0.1, first)
        kernel.schedule(0.2, lambda: seen.append("second"))
        kernel.run_until_idle()
        assert seen == ["first"]

    def test_run_is_not_reentrant(self):
        kernel = SimulationKernel()
        errors = []

        def callback():
            try:
                kernel.run()
            except SimulationError as error:
                errors.append(error)

        kernel.schedule(0.1, callback)
        kernel.run_until_idle()
        assert len(errors) == 1

    def test_events_executed_counter(self):
        kernel = SimulationKernel()
        for _ in range(4):
            kernel.schedule(0.1, lambda: None)
        kernel.run_until_idle()
        assert kernel.events_executed == 4
        assert kernel.pending_events == 0

    def test_trace_hook_sees_events(self):
        kernel = SimulationKernel()
        labels = []
        kernel.add_trace_hook(lambda event: labels.append(event.label))
        kernel.schedule(0.1, lambda: None, label="hello")
        kernel.run_until_idle()
        assert labels == ["hello"]


class TestDeterminism:
    def test_same_seed_same_random_streams(self):
        first = SimulationKernel(seed=42)
        second = SimulationKernel(seed=42)
        stream_a = first.random.stream("jitter")
        stream_b = second.random.stream("jitter")
        assert [stream_a.random() for _ in range(20)] == [
            stream_b.random() for _ in range(20)
        ]

    def test_different_streams_are_independent(self):
        kernel = SimulationKernel(seed=42)
        one = kernel.random.stream("one")
        # Drawing from an unrelated stream must not perturb "one".
        other = kernel.random.stream("other")
        first_draws = [one.random() for _ in range(5)]
        fresh = SimulationKernel(seed=42).random.stream("one")
        for _ in range(100):
            other.random()
        assert first_draws == [fresh.random() for _ in range(5)]


class TestPeriodicTimer:
    def test_fires_repeatedly_until_stopped(self):
        kernel = SimulationKernel()
        ticks = []
        timer = PeriodicTimer(kernel, 0.1, lambda: ticks.append(kernel.now()))
        timer.start()
        kernel.run(until=0.55)
        timer.stop()
        kernel.run_until_idle()
        assert ticks == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_start_immediately_fires_at_zero_delay(self):
        kernel = SimulationKernel()
        ticks = []
        timer = PeriodicTimer(
            kernel, 0.1, lambda: ticks.append(kernel.now()), start_immediately=True
        )
        timer.start()
        kernel.run(until=0.25)
        assert ticks[0] == pytest.approx(0.0)

    def test_reschedule_changes_interval(self):
        kernel = SimulationKernel()
        ticks = []
        timer = PeriodicTimer(kernel, 0.1, lambda: ticks.append(kernel.now()))
        timer.start()
        kernel.run(until=0.15)
        timer.reschedule(0.5)
        kernel.run(until=1.0)
        timer.stop()
        assert ticks == pytest.approx([0.1, 0.65])

    def test_rejects_non_positive_interval(self):
        kernel = SimulationKernel()
        with pytest.raises(SimulationError):
            PeriodicTimer(kernel, 0.0, lambda: None)

    def test_double_start_is_idempotent(self):
        kernel = SimulationKernel()
        ticks = []
        timer = PeriodicTimer(kernel, 0.1, lambda: ticks.append(1))
        timer.start()
        timer.start()
        kernel.run(until=0.15)
        assert len(ticks) == 1


class TestTimeout:
    def test_fires_once_after_duration(self):
        kernel = SimulationKernel()
        fired = []
        timeout = Timeout(kernel, 0.3, lambda: fired.append(kernel.now()))
        timeout.start()
        kernel.run_until_idle()
        assert fired == [0.3]

    def test_restart_postpones_firing(self):
        kernel = SimulationKernel()
        fired = []
        timeout = Timeout(kernel, 0.3, lambda: fired.append(kernel.now()))
        timeout.start()
        kernel.run(until=0.2)
        timeout.restart()
        kernel.run_until_idle()
        assert fired == [0.5]

    def test_cancel_prevents_firing(self):
        kernel = SimulationKernel()
        fired = []
        timeout = Timeout(kernel, 0.3, lambda: fired.append(1))
        timeout.start()
        timeout.cancel()
        kernel.run_until_idle()
        assert fired == []
        assert not timeout.armed

    def test_restart_with_new_duration(self):
        kernel = SimulationKernel()
        fired = []
        timeout = Timeout(kernel, 0.3, lambda: fired.append(kernel.now()))
        timeout.restart(0.1)
        kernel.run_until_idle()
        assert fired == [0.1]
