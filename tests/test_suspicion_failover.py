"""Tests for suspicion-driven coordinator promotion.

With ``failure_detection`` configured the cluster no longer trusts the
crash manager's ground truth for failover: each site runs a heartbeat
failure detector, a site is *condemned* when a quorum of the other live
observers suspect it, and the coordinator role follows the Ω rule — the
lowest-ranked live, non-condemned site.  That machinery must promote on a
real crash (after a detection delay), promote *and demote* on a false
suspicion (the old coordinator reclaims the role once re-trusted), and
never violate 1-copy-serializability across the view changes.
"""

import pytest

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.failure import CrashSchedule, FailureDetectionConfig, SuspicionFailoverGovernor
from repro.network import ConstantLatency
from repro.verification import check_one_copy_serializability


def build_registry():
    registry = ProcedureRegistry()

    @registry.procedure("add", conflict_class=lambda p: f"C{p['slot'] % 3}", duration=0.002)
    def add(ctx, params):
        key = f"slot:{params['slot']}"
        ctx.write(key, ctx.read(key) + 1)

    return registry


def build_cluster(seed=3, site_count=3, **config_kwargs):
    config_kwargs.setdefault("failure_detection", FailureDetectionConfig())
    config_kwargs.setdefault("latency_model", ConstantLatency(0.001))
    return ReplicatedDatabase(
        ClusterConfig(
            site_count=site_count,
            seed=seed,
            echo_on_first_receipt=True,
            **config_kwargs,
        ),
        build_registry(),
        initial_data={f"slot:{index}": 0 for index in range(6)},
    )


def submit(cluster, count, start=0.0, spacing=0.004, sites=("N2", "N3")):
    for index in range(count):
        cluster.kernel.schedule_at(
            start + index * spacing,
            lambda site=sites[index % len(sites)], index=index: cluster.submit(
                site, "add", {"slot": index % 6}
            ),
        )


def settle(cluster, until):
    """Phased drain for detector-driven clusters (timers never go idle)."""
    cluster.run(until=until)
    cluster.stop_failure_detectors()
    cluster.run_until_idle()


class TestGovernor:
    """Unit tests for the quorum/Ω election rule, with stub detectors."""

    class StubDetector:
        def __init__(self):
            self.suspects = set()
            self.listeners = []

        def add_listener(self, listener):
            self.listeners.append(listener)

        def is_suspected(self, peer):
            return peer in self.suspects

        def suspect(self, peer):
            self.suspects.add(peer)
            for listener in self.listeners:
                listener(peer, True)

        def trust(self, peer):
            self.suspects.discard(peer)
            for listener in self.listeners:
                listener(peer, False)

    def build(self, sites=("N1", "N2", "N3"), quorum=None):
        detectors = {site: self.StubDetector() for site in sites}
        changes = []
        governor = SuspicionFailoverGovernor(
            list(sites), detectors, changes.append, quorum=quorum
        )
        return governor, detectors, changes

    def test_initial_coordinator_is_lowest_ranked(self):
        governor, _, changes = self.build()
        assert governor.coordinator() == "N1"
        assert changes == []  # no change event for the initial state

    def test_single_suspicion_is_not_condemnation(self):
        governor, detectors, changes = self.build()
        detectors["N2"].suspect("N1")  # 1 of 2 observers: below quorum
        assert not governor.condemned("N1")
        assert governor.coordinator() == "N1"
        assert changes == []

    def test_quorum_of_suspectors_condemns_and_promotes(self):
        governor, detectors, changes = self.build()
        detectors["N2"].suspect("N1")
        detectors["N3"].suspect("N1")  # 2 of 2 observers: quorum reached
        assert governor.condemned("N1")
        assert governor.coordinator() == "N2"
        assert changes == ["N2"]

    def test_retrust_demotes_back_to_rightful_coordinator(self):
        governor, detectors, changes = self.build()
        detectors["N2"].suspect("N1")
        detectors["N3"].suspect("N1")
        detectors["N2"].trust("N1")  # suspicion corrected: quorum lost
        assert not governor.condemned("N1")
        assert governor.coordinator() == "N1"
        assert changes == ["N2", "N1"]

    def test_accused_sites_own_detector_does_not_vote(self):
        # The electorate excludes the accused: with an explicit quorum of 1
        # a single *other* observer condemns, but the accused suspecting
        # someone else never counts against itself.
        governor, detectors, changes = self.build(quorum=1)
        detectors["N1"].suspect("N2")  # N1 accuses N2, not itself
        assert not governor.condemned("N1")
        assert governor.condemned("N2")
        assert governor.coordinator() == "N1"

    def test_site_down_is_not_a_vote(self):
        # Ground-truth liveness must never decide the election: telling the
        # governor a site died changes nothing until detectors condemn it.
        governor, detectors, changes = self.build()
        governor.site_down("N1")
        assert governor.coordinator() == "N1"
        assert changes == []
        detectors["N2"].suspect("N1")
        detectors["N3"].suspect("N1")
        assert governor.coordinator() == "N2"

    def test_condemned_sites_are_skipped_in_ranking(self):
        governor, detectors, changes = self.build()
        detectors["N2"].suspect("N1")
        detectors["N3"].suspect("N1")
        assert governor.coordinator() == "N2"
        # N1 is condemned, so N2's electorate is just {N3}: quorum of 1.
        detectors["N3"].suspect("N2")
        assert governor.coordinator() == "N3"
        assert changes == ["N2", "N3"]

    def test_condemned_observers_lose_their_vote(self):
        governor, detectors, changes = self.build(
            sites=("N1", "N2", "N3", "N4")
        )
        # N4 crashed earlier and was condemned by a quorum (2 of 3); its
        # detector is now frozen and will never suspect anyone again.
        detectors["N1"].suspect("N4")
        detectors["N2"].suspect("N4")
        assert governor.condemned("N4")
        # Electorate for N1 is {N2, N3} (N4 condemned): quorum is 2, so a
        # single vote isn't enough but the frozen N4 can't block it either.
        detectors["N2"].suspect("N1")
        assert not governor.condemned("N1")
        detectors["N3"].suspect("N1")
        assert governor.condemned("N1")
        assert governor.coordinator() == "N2"


class TestSuspicionDrivenCluster:
    def test_crash_promotes_only_after_detection_delay(self):
        cluster = build_cluster()
        cluster.crash_manager.apply_schedule(CrashSchedule().crash("N1", at=0.050))
        # Immediately after the crash nothing has timed out yet: the role
        # still points at N1 (the detectors must *detect*, not be told).
        cluster.run(until=0.060)
        assert cluster.coordinator_site() == "N1"
        # After the suspicion timeout the quorum condemns N1 and promotes.
        cluster.run(until=0.300)
        assert cluster.coordinator_site() == "N2"

    def test_false_suspicion_promotes_then_restores_the_coordinator(self):
        cluster = build_cluster()
        submit(cluster, count=12, start=0.0)

        def spike():
            cluster.transport.latency_model = ConstantLatency(0.150)

        def recover():
            cluster.transport.latency_model = ConstantLatency(0.001)

        cluster.kernel.schedule_at(0.020, spike)
        cluster.kernel.schedule_at(0.140, recover)
        elections = []
        cluster.kernel.schedule_at(
            0.100, lambda: elections.append(cluster.coordinator_site())
        )
        settle(cluster, until=0.8)

        # Mid-spike the healthy coordinator was deposed by false suspicion
        # (a global spike makes everyone suspect everyone, so condemnation
        # can cascade past N2 — who exactly stands in is seed-dependent)...
        assert len(elections) == 1 and elections[0] != "N1"
        # ...and afterwards the rightful lowest-ranked site won it back.
        assert cluster.coordinator_site() == "N1"
        assert not cluster.crash_manager.crash_count("N1")
        # Both view changes happened with every site alive and submitting,
        # yet the definitive order stays single-copy serializable.
        for site in cluster.site_ids():
            assert cluster.replica(site).committed_count() == 12
        assert cluster.database_divergence() == {}
        check_one_copy_serializability(cluster.histories()).raise_if_violated()

    def test_crash_and_recovery_with_detectors_converges(self):
        cluster = build_cluster()
        submit(cluster, count=10, start=0.0)
        cluster.crash_manager.apply_schedule(
            CrashSchedule().crash("N1", at=0.040).recover("N1", at=0.250)
        )
        submit(cluster, count=10, start=0.300)
        settle(cluster, until=0.9)

        # N1 recovered, caught up, and — being live and no longer condemned —
        # reclaimed the role under the Ω rule (unlike oracle mode, where the
        # recovered site defers; suspicion mode is authoritative).
        assert cluster.coordinator_site() == "N1"
        for site in cluster.site_ids():
            assert cluster.replica(site).committed_count() == 20
        assert cluster.database_divergence() == {}
        check_one_copy_serializability(cluster.histories()).raise_if_violated()

    def test_legacy_mode_unaffected_by_detector_config_absence(self):
        cluster = ReplicatedDatabase(
            ClusterConfig(site_count=3, seed=3, echo_on_first_receipt=True),
            build_registry(),
            initial_data={f"slot:{index}": 0 for index in range(6)},
        )
        assert cluster.failure_detectors == {}
        cluster.crash_manager.apply_schedule(CrashSchedule().crash("N1", at=0.010))
        cluster.run(until=0.020)
        # Oracle mode still promotes instantly on the crash notification.
        assert cluster.coordinator_site() == "N2"


class TestFailureDetectionConfig:
    def test_validation(self):
        from repro.errors import ReplicationError

        with pytest.raises(ReplicationError):
            FailureDetectionConfig(heartbeat_interval=0.0)
        with pytest.raises(ReplicationError):
            FailureDetectionConfig(initial_timeout=-1.0)
        with pytest.raises(ReplicationError):
            FailureDetectionConfig(timeout_increment=-0.1)
        with pytest.raises(ReplicationError):
            FailureDetectionConfig(quorum=0)

    def test_defaults_are_valid(self):
        config = FailureDetectionConfig()
        assert config.heartbeat_interval < config.initial_timeout
