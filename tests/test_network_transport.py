"""Unit tests for the network transport, partitions and the dispatcher."""

import pytest

from repro.errors import NetworkError, UnknownSiteError
from repro.network import ConstantLatency, NetworkTransport, PartitionController
from repro.network.dispatcher import SiteDispatcher
from repro.simulation import SimulationKernel


def build_transport(seed=0, **kwargs):
    kernel = SimulationKernel(seed=seed)
    transport = NetworkTransport(kernel, ConstantLatency(0.001), **kwargs)
    return kernel, transport


def register_collector(transport, site_id):
    received = []
    transport.register_site(site_id, received.append)
    return received


class TestUnicast:
    def test_message_is_delivered_after_latency(self):
        kernel, transport = build_transport()
        inbox = register_collector(transport, "N2")
        register_collector(transport, "N1")
        transport.unicast("N1", "N2", {"op": "ping"})
        kernel.run_until_idle()
        assert len(inbox) == 1
        assert inbox[0].payload == {"op": "ping"}
        assert kernel.now() == pytest.approx(0.001)

    def test_unknown_destination_rejected(self):
        kernel, transport = build_transport()
        register_collector(transport, "N1")
        with pytest.raises(UnknownSiteError):
            transport.unicast("N1", "N9", "payload")

    def test_unknown_sender_rejected(self):
        kernel, transport = build_transport()
        register_collector(transport, "N2")
        with pytest.raises(UnknownSiteError):
            transport.unicast("N9", "N2", "payload")

    def test_stats_count_unicasts(self):
        kernel, transport = build_transport()
        register_collector(transport, "N1")
        register_collector(transport, "N2")
        transport.unicast("N1", "N2", "a")
        transport.unicast("N1", "N2", "b")
        kernel.run_until_idle()
        assert transport.stats.unicasts_sent == 2
        assert transport.stats.envelopes_delivered == 2


class TestMulticast:
    def test_delivered_to_every_site_including_sender(self):
        kernel, transport = build_transport()
        inboxes = {site: register_collector(transport, site) for site in ["N1", "N2", "N3"]}
        transport.multicast("N1", "hello")
        kernel.run_until_idle()
        assert all(len(inbox) == 1 for inbox in inboxes.values())

    def test_exclude_sender(self):
        kernel, transport = build_transport()
        inboxes = {site: register_collector(transport, site) for site in ["N1", "N2"]}
        transport.multicast("N1", "hello", include_sender=False)
        kernel.run_until_idle()
        assert len(inboxes["N1"]) == 0
        assert len(inboxes["N2"]) == 1

    def test_explicit_destinations(self):
        kernel, transport = build_transport()
        inboxes = {site: register_collector(transport, site) for site in ["N1", "N2", "N3"]}
        transport.multicast("N1", "hello", destinations=["N2"])
        kernel.run_until_idle()
        assert len(inboxes["N2"]) == 1
        assert len(inboxes["N3"]) == 0

    def test_delivery_log_records_receivers(self):
        kernel, transport = build_transport(record_deliveries=True)
        for site in ["N1", "N2", "N3"]:
            register_collector(transport, site)
        transport.multicast("N1", "x", kind="probe")
        kernel.run_until_idle()
        receivers = {record.receiver for record in transport.delivery_log}
        assert receivers == {"N1", "N2", "N3"}
        assert all(record.kind == "probe" for record in transport.delivery_log)


class TestLossAndRetransmission:
    def test_lossy_channel_still_delivers_everything(self):
        kernel, transport = build_transport(loss_probability=0.4)
        inbox = register_collector(transport, "N2")
        register_collector(transport, "N1")
        for index in range(50):
            transport.unicast("N1", "N2", index)
        kernel.run_until_idle()
        assert sorted(envelope.payload for envelope in inbox) == list(range(50))
        assert transport.stats.retransmissions > 0

    def test_invalid_loss_probability_rejected(self):
        kernel = SimulationKernel()
        with pytest.raises(NetworkError):
            NetworkTransport(kernel, ConstantLatency(), loss_probability=1.0)


class TestCrashBuffering:
    def test_messages_to_down_site_are_buffered_until_recovery(self):
        kernel, transport = build_transport()
        inbox = register_collector(transport, "N2")
        register_collector(transport, "N1")
        transport.set_site_up("N2", False)
        transport.unicast("N1", "N2", "while-down")
        kernel.run_until_idle()
        assert inbox == []
        transport.set_site_up("N2", True)
        kernel.run_until_idle()
        assert len(inbox) == 1
        assert inbox[0].payload == "while-down"

    def test_is_site_up_tracks_state(self):
        kernel, transport = build_transport()
        register_collector(transport, "N1")
        assert transport.is_site_up("N1")
        transport.set_site_up("N1", False)
        assert not transport.is_site_up("N1")


class TestSharedMedium:
    def test_multicasts_are_serialised_by_frame_time(self):
        kernel, transport = build_transport(medium_frame_time=0.010)
        inbox = register_collector(transport, "N2")
        register_collector(transport, "N1")
        transport.multicast("N1", "first")
        transport.multicast("N1", "second")
        kernel.run_until_idle()
        arrival_times = sorted(
            envelope.sent_at for envelope in inbox
        )  # sent at the same instant
        assert arrival_times == [0.0, 0.0]
        # The second frame waits for the first to leave the medium, so the
        # difference between deliveries is at least one frame time.
        assert kernel.now() >= 0.020

    def test_negative_frame_time_rejected(self):
        kernel = SimulationKernel()
        with pytest.raises(NetworkError):
            NetworkTransport(kernel, ConstantLatency(), medium_frame_time=-0.1)


class TestPartitions:
    def test_partitioned_sites_do_not_receive_until_heal(self):
        kernel, transport = build_transport()
        inbox = register_collector(transport, "N2")
        register_collector(transport, "N1")
        transport.partitions.isolate(["N1"])
        transport.unicast("N1", "N2", "across-partition")
        kernel.run(until=0.050)
        assert inbox == []
        transport.partitions.heal()
        kernel.run_until_idle()
        assert len(inbox) == 1

    def test_sites_in_same_group_communicate(self):
        controller = PartitionController()
        controller.isolate(["N1", "N2"])
        assert controller.connected("N1", "N2")
        assert not controller.connected("N1", "N3")

    def test_heal_specific_sites(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        controller.isolate(["N2"])
        controller.heal(["N1"])
        assert controller.group_of("N1") is None
        assert controller.group_of("N2") is not None

    def test_empty_partition_rejected(self):
        controller = PartitionController()
        with pytest.raises(NetworkError):
            controller.isolate([])

    def test_history_records_operations(self):
        controller = PartitionController()
        controller.isolate(["N1"], at_time=1.0)
        controller.heal(at_time=2.0)
        operations = [entry[1] for entry in controller.history]
        assert operations == ["isolate", "heal"]

    def test_self_connectivity_always_true(self):
        controller = PartitionController()
        controller.isolate(["N1"])
        assert controller.connected("N1", "N1")


class TestDispatcher:
    def test_routes_by_kind(self):
        kernel, transport = build_transport()
        dispatcher = SiteDispatcher(transport, "N1")
        register_collector(transport, "N2")
        seen_a, seen_b = [], []
        dispatcher.register_kind("alpha", lambda envelope: (seen_a.append(envelope), True)[1])
        dispatcher.register_kind("beta", lambda envelope: (seen_b.append(envelope), True)[1])
        transport.unicast("N2", "N1", "x", kind="alpha")
        transport.unicast("N2", "N1", "y", kind="beta")
        kernel.run_until_idle()
        assert len(seen_a) == 1 and seen_a[0].payload == "x"
        assert len(seen_b) == 1 and seen_b[0].payload == "y"

    def test_unconsumed_envelopes_are_recorded(self):
        kernel, transport = build_transport()
        dispatcher = SiteDispatcher(transport, "N1")
        register_collector(transport, "N2")
        transport.unicast("N2", "N1", "z", kind="unknown-kind")
        kernel.run_until_idle()
        assert len(dispatcher.unhandled) == 1

    def test_catch_all_handler(self):
        kernel, transport = build_transport()
        dispatcher = SiteDispatcher(transport, "N1")
        register_collector(transport, "N2")
        seen = []
        dispatcher.register(lambda envelope: (seen.append(envelope), True)[1])
        transport.unicast("N2", "N1", "z", kind="whatever")
        kernel.run_until_idle()
        assert len(seen) == 1
        assert dispatcher.unhandled == []

    def test_empty_kind_rejected(self):
        kernel, transport = build_transport()
        dispatcher = SiteDispatcher(transport, "N1")
        with pytest.raises(NetworkError):
            dispatcher.register_kind("", lambda envelope: True)
