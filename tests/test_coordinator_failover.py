"""Tests for coordinator/sequencer failover in the cluster facade.

The site that establishes the definitive total order can crash; the cluster
promotes the lowest-id surviving site, which confirms every message the old
coordinator left unordered, and processing continues.  A recovering site
adopts the current coordinator instead of competing with it.
"""

import pytest

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.core.config import BROADCAST_CONSERVATIVE, BROADCAST_OPTIMISTIC
from repro.failure import CrashSchedule
from repro.verification import check_one_copy_serializability


def build_registry():
    registry = ProcedureRegistry()

    @registry.procedure("add", conflict_class=lambda p: f"C{p['slot'] % 3}", duration=0.002)
    def add(ctx, params):
        key = f"slot:{params['slot']}"
        ctx.write(key, ctx.read(key) + 1)

    return registry


def build_cluster(broadcast, seed=3):
    return ReplicatedDatabase(
        ClusterConfig(
            site_count=4,
            seed=seed,
            broadcast=broadcast,
            echo_on_first_receipt=True,
        ),
        build_registry(),
        initial_data={f"slot:{index}": 0 for index in range(6)},
    )


def submit_from_survivors(cluster, count, start=0.0, spacing=0.004, sites=("N2", "N3", "N4")):
    for index in range(count):
        cluster.kernel.schedule_at(
            start + index * spacing,
            lambda site=sites[index % len(sites)], index=index: cluster.submit(
                site, "add", {"slot": index % 6}
            ),
        )


@pytest.mark.parametrize("broadcast", [BROADCAST_OPTIMISTIC, BROADCAST_CONSERVATIVE])
def test_processing_continues_after_coordinator_crash(broadcast):
    cluster = build_cluster(broadcast)
    # Phase 1: load while N1 (the initial coordinator) is alive.
    submit_from_survivors(cluster, count=10, start=0.0)
    # N1 crashes after the first phase completes; phase 2 is submitted after
    # the crash and must still commit at the surviving sites.
    cluster.crash_manager.apply_schedule(CrashSchedule().crash("N1", at=0.100))
    submit_from_survivors(cluster, count=10, start=0.150)
    cluster.run_until_idle()

    assert cluster.coordinator_site() == "N2"
    surviving = ["N2", "N3", "N4"]
    for site in surviving:
        assert cluster.replica(site).committed_count() == 20
    histories = {site: cluster.replica(site).history for site in surviving}
    check_one_copy_serializability(histories).raise_if_violated()
    contents = {site: cluster.replica(site).database_contents() for site in surviving}
    assert contents["N2"] == contents["N3"] == contents["N4"]


def test_recovered_old_coordinator_does_not_reclaim_the_role():
    cluster = build_cluster(BROADCAST_OPTIMISTIC)
    submit_from_survivors(cluster, count=8, start=0.0)
    cluster.crash_manager.apply_schedule(
        CrashSchedule().crash("N1", at=0.080).recover("N1", at=0.200)
    )
    submit_from_survivors(cluster, count=8, start=0.250)
    cluster.run_until_idle()

    # N2 stays coordinator after N1 recovers; N1's endpoint points at N2.
    assert cluster.coordinator_site() == "N2"
    assert cluster.broadcast_endpoint("N1").coordinator_site == "N2"
    assert not cluster.broadcast_endpoint("N1").is_coordinator
    # The recovered site catches up on everything it missed.
    assert cluster.replica("N1").committed_count() == 16
    assert cluster.database_divergence() == {}
    check_one_copy_serializability(cluster.histories()).raise_if_violated()


def test_messages_in_flight_at_crash_time_are_still_ordered():
    cluster = build_cluster(BROADCAST_OPTIMISTIC, seed=9)
    # Submit from survivors shortly before the coordinator crashes, so some
    # requests are opt-delivered but not yet confirmed when N1 dies.
    submit_from_survivors(cluster, count=6, start=0.0, spacing=0.001)
    cluster.crash_manager.apply_schedule(CrashSchedule().crash("N1", at=0.004))
    cluster.run_until_idle()
    surviving = ["N2", "N3", "N4"]
    for site in surviving:
        assert cluster.replica(site).committed_count() == 6
    histories = {site: cluster.replica(site).history for site in surviving}
    check_one_copy_serializability(histories).raise_if_violated()
