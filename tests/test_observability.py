"""Tests for the observability layer: tracing, registry, store, gate, trend.

Covers the span protocol (closed exactly once, loud failures on misuse),
end-to-end tracing of flat and chaos runs (same-seed reproducible), the
zero-cost disabled path, the unified metric namespace across flat and
sharded clusters, and the provenance-stamped results store with its
baseline regression gate.
"""

import inspect
import json

import pytest

from repro.chaos.plan import FaultPlan, coordinator
from repro.chaos.scenarios import build_chaos_cluster, execute_chaos_run
from repro.core.cluster import ReplicatedDatabase
from repro.core.config import ClusterConfig
from repro.observability import (
    FLAT_SHARD_LABEL,
    PerfGate,
    ResultsStore,
    ResultsStoreError,
    TraceError,
    TransactionTracer,
    build_registry,
    config_hash,
    derive_metrics,
    failures,
    gate_against_history,
    render_trend_report,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.procedures import (
    build_conflict_map,
    build_initial_data,
    build_partitioned_registry,
)
from repro.workloads.specs import WorkloadSpec


def build_traced_cluster(tracer, *, seed=7, site_count=3, updates_per_site=6):
    spec = WorkloadSpec(
        class_count=4,
        updates_per_site=updates_per_site,
        update_interval=0.002,
        update_duration=0.0008,
    )
    cluster = ReplicatedDatabase(
        ClusterConfig(site_count=site_count, seed=seed, tracer=tracer),
        build_partitioned_registry(spec),
        conflict_map=build_conflict_map(spec),
        initial_data=build_initial_data(spec),
    )
    WorkloadGenerator(spec).apply(cluster)
    return cluster


class TestSpanProtocol:
    def test_begin_end_once(self):
        tracer = TransactionTracer()
        span = tracer.begin(1.0, "execute", "S1", "T1", conflict_class="C0")
        assert not span.closed
        closed = tracer.end(2.5, "execute", "S1", "T1", outcome="executed")
        assert closed is span
        assert span.closed
        assert span.duration == pytest.approx(1.5)
        assert span.outcome == "executed"
        assert span.attempt == 1

    def test_double_close_raises(self):
        tracer = TransactionTracer()
        tracer.begin(1.0, "execute", "S1", "T1")
        tracer.end(2.0, "execute", "S1", "T1")
        with pytest.raises(TraceError):
            tracer.end(3.0, "execute", "S1", "T1")

    def test_end_without_begin_raises(self):
        tracer = TransactionTracer()
        with pytest.raises(TraceError):
            tracer.end(1.0, "lifecycle", "S1", "T1")

    def test_begin_while_open_raises(self):
        tracer = TransactionTracer()
        tracer.begin(1.0, "execute", "S1", "T1")
        with pytest.raises(TraceError):
            tracer.begin(1.5, "execute", "S1", "T1")

    def test_reopen_after_close_numbers_attempts(self):
        tracer = TransactionTracer()
        tracer.begin(1.0, "execute", "S1", "T1")
        tracer.end(2.0, "execute", "S1", "T1", outcome="reorder_abort")
        retry = tracer.begin(2.5, "execute", "S1", "T1")
        assert retry.attempt == 2

    def test_end_if_open_is_a_noop_when_closed(self):
        tracer = TransactionTracer()
        assert tracer.end_if_open(1.0, "execute", "S1", "T1") is None
        tracer.begin(1.0, "execute", "S1", "T1")
        assert tracer.end_if_open(2.0, "execute", "S1", "T1") is not None
        assert tracer.end_if_open(3.0, "execute", "S1", "T1") is None

    def test_close_site_spans_only_touches_that_site(self):
        tracer = TransactionTracer()
        tracer.begin(1.0, "execute", "S1", "T1")
        tracer.begin(1.0, "lifecycle", "S1", "T1")
        tracer.begin(1.0, "execute", "S2", "T2")
        closed = tracer.close_site_spans(2.0, "S1", outcome="crash")
        assert closed == 2
        assert [span.site for span in tracer.open_spans()] == ["S2"]
        assert all(
            span.outcome == "crash" for span in tracer.spans if span.site == "S1"
        )


class TestTracedClusterRun:
    def test_lifecycle_spans_close_exactly_once(self):
        tracer = TransactionTracer()
        cluster = build_traced_cluster(tracer)
        cluster.run_until_idle()

        assert tracer.open_spans() == []
        lifecycles = [span for span in tracer.spans if span.name == "lifecycle"]
        assert lifecycles and all(span.closed for span in lifecycles)
        assert all(span.outcome == "committed" for span in lifecycles)
        # Exactly one lifecycle attempt per transaction at its submit site.
        keys = [(s.name, s.site, s.transaction_id, s.attempt) for s in tracer.spans]
        assert len(keys) == len(set(keys))

    def test_events_cover_the_transaction_path(self):
        tracer = TransactionTracer()
        cluster = build_traced_cluster(tracer)
        cluster.run_until_idle()
        counts = tracer.counts_by_kind()
        for kind in ("submit", "broadcast_send", "opt_deliver", "to_deliver", "commit"):
            assert counts.get(kind, 0) > 0, counts
        transaction_id = next(
            event.transaction_id for event in tracer.events if event.kind == "submit"
        )
        timeline = [kind for _, kind, _ in tracer.transaction_timeline(transaction_id)]
        assert timeline.index("submit") < timeline.index("commit")

    def test_derived_metrics_from_a_traced_run(self):
        tracer = TransactionTracer()
        cluster = build_traced_cluster(tracer)
        cluster.run_until_idle()
        derived = derive_metrics(cluster)
        assert 0.0 <= derived.opt_to_divergence_rate <= 1.0
        assert derived.commits > 0
        assert derived.max_class_queue_depth >= 1.0
        flat = derived.to_metrics()
        assert "opt_to_divergence_rate" in flat
        assert "client_commit_latency_p95" in flat

    def test_jsonl_export_round_trips(self):
        tracer = TransactionTracer()
        cluster = build_traced_cluster(tracer, updates_per_site=3)
        cluster.run_until_idle()
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == len(tracer.events) + len(tracer.spans)
        parsed = [json.loads(line) for line in lines]
        assert {entry["type"] for entry in parsed} == {"event", "span"}

    def test_chrome_trace_export_shape(self, tmp_path):
        tracer = TransactionTracer()
        cluster = build_traced_cluster(tracer, updates_per_site=3)
        cluster.run_until_idle()
        path = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(str(path))
        entries = json.loads(path.read_text())
        assert len(entries) == count
        assert {entry["ph"] for entry in entries} <= {"X", "i"}
        stamps = [entry["ts"] for entry in entries]
        assert stamps == sorted(stamps)
        assert all(entry["ts"] >= 0 for entry in entries)


class TestDisabledTracingFastPath:
    def test_kernel_hot_loop_has_no_tracing_hooks(self):
        # The zero-cost claim, checked structurally: the simulation kernel
        # never consults a tracer, so the dispatch floor is untouched.
        import repro.simulation.kernel as kernel_module

        assert "tracer" not in inspect.getsource(kernel_module)

    def test_disabled_tracing_changes_nothing(self):
        untraced = build_traced_cluster(None, seed=9)
        untraced_events = untraced.run_until_idle()
        tracer = TransactionTracer()
        traced = build_traced_cluster(tracer, seed=9)
        traced_events = traced.run_until_idle()
        # Tracing schedules no kernel events and alters no outcomes: the
        # traced run dispatches the exact same event count and commits the
        # same transactions.
        assert traced_events == untraced_events
        assert traced.committed_counts() == untraced.committed_counts()
        assert len(tracer.events) > 0


class TestChaosTraceReproducibility:
    def run_traced_failover(self, seed):
        tracer = TransactionTracer()
        cluster, spec = build_chaos_cluster(seed, tracer=tracer)
        first_shard = cluster.shard_ids()[0]
        plan = FaultPlan("traced-failover").crash(
            coordinator(first_shard), at=0.030, duration=0.080
        )
        result = execute_chaos_run(
            cluster, spec, plan, scenario="traced_failover", seed=seed
        )
        return tracer, result

    def test_same_seed_same_trace(self):
        first_tracer, first_result = self.run_traced_failover(seed=5)
        second_tracer, second_result = self.run_traced_failover(seed=5)
        assert first_result.ok and second_result.ok
        assert len(first_tracer.events) > 0
        assert first_tracer.signature() == second_tracer.signature()

    def test_crash_closes_spans_and_is_visible(self):
        tracer, result = self.run_traced_failover(seed=5)
        assert result.faults_injected >= 1
        counts = tracer.counts_by_kind()
        assert counts.get("site_down", 0) >= 1
        assert counts.get("site_up", 0) >= 1
        assert tracer.open_spans() == []

    def test_different_seed_different_trace(self):
        first_tracer, _ = self.run_traced_failover(seed=5)
        second_tracer, _ = self.run_traced_failover(seed=6)
        assert first_tracer.signature() != second_tracer.signature()

    def test_same_seed_sharded_double_run_same_trace(self):
        # Regression guard for the determinism fixes the static-analysis
        # suite motivated (set-ordered shard-config kwargs, hash-free
        # RandomSource.fork): two fresh same-seed sharded runs must produce
        # byte-identical trace signatures.
        from repro.workloads.sharded import ShardedWorkloadGenerator

        def run_once():
            tracer = TransactionTracer()
            sharded, spec = build_chaos_cluster(seed=11, tracer=tracer)
            ShardedWorkloadGenerator(spec).apply(sharded)
            sharded.run_until_idle()
            return tracer

        first, second = run_once(), run_once()
        assert len(first.events) > 0
        assert first.signature() == second.signature()


class TestRegistryNamespace:
    def test_flat_cluster_registers_under_the_global_shard(self):
        cluster = build_traced_cluster(None)
        cluster.run_until_idle()
        registry = build_registry(cluster)
        assert registry.label_values("shard") == [FLAT_SHARD_LABEL]
        assert len(registry) == len(cluster.site_ids())
        total = sum(cluster.committed_counts().values())
        assert registry.counter_total("commits") == total
        assert registry.gauge_high_water("class_queue_depth") >= 1.0

    def test_flat_and_sharded_share_one_namespace(self):
        flat = build_traced_cluster(None)
        flat.run_until_idle()
        flat_registry = build_registry(flat)

        sharded, spec = build_chaos_cluster(seed=3)
        from repro.workloads.sharded import ShardedWorkloadGenerator

        ShardedWorkloadGenerator(spec).apply(sharded)
        sharded.run_until_idle()
        sharded_registry = build_registry(sharded)

        assert sharded_registry.label_values("shard") == sorted(sharded.shard_ids())
        flat_names = flat_registry.instrument_names()
        sharded_names = sharded_registry.instrument_names()
        for kind in ("counters", "latencies"):
            shared = set(flat_names[kind]) & set(sharded_names[kind])
            assert {"commits", "client_commit_latency"} & shared or shared
        # The flat snapshot keys are the same shape as the sharded ones,
        # just labelled with the global pseudo-shard.
        flat_keys = list(flat_registry.snapshot())
        assert flat_keys and all(
            key.startswith(f"shard={FLAT_SHARD_LABEL}/site=") for key in flat_keys
        )

    def test_label_filters_partition_the_totals(self):
        sharded, spec = build_chaos_cluster(seed=3)
        from repro.workloads.sharded import ShardedWorkloadGenerator

        ShardedWorkloadGenerator(spec).apply(sharded)
        sharded.run_until_idle()
        registry = build_registry(sharded)
        per_shard = [
            registry.counter_total("commits", shard=shard_id)
            for shard_id in sharded.shard_ids()
        ]
        assert sum(per_shard) == registry.counter_total("commits")
        assert all(count > 0 for count in per_shard)


class TestResultsStore:
    def test_record_and_query_runs(self, tmp_path):
        store = ResultsStore(str(tmp_path / "results.sqlite"))
        record = store.record_run(
            "demo_bench",
            config={"sites": 4, "seed": 2},
            metrics={"throughput": 120.0, "aborts": 3},
            seed=2,
            git_rev="abc1234",
            created_at=1000.0,
        )
        assert record.run_id == 1
        assert record.config_hash == config_hash({"seed": 2, "sites": 4})
        fetched = store.runs("demo_bench")
        assert len(fetched) == 1
        assert fetched[0].metrics == {"aborts": 3.0, "throughput": 120.0}
        assert store.run_names() == ["demo_bench"]
        store.close()

    def test_store_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "results.sqlite")
        store = ResultsStore(path)
        store.record_run("persisted", config={}, metrics={"x": 1.0})
        store.close()
        reopened = ResultsStore(path)
        assert [run.name for run in reopened.runs()] == ["persisted"]
        reopened.close()

    def test_invalid_run_name_rejected(self):
        store = ResultsStore()
        with pytest.raises(ResultsStoreError):
            store.record_run("bad name!", config={}, metrics={})
        store.close()

    def test_config_hash_ignores_key_order(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == config_hash({"b": [2, 3], "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_metric_history_filters(self):
        store = ResultsStore()
        first = store.record_run("b", config={"v": 1}, metrics={"m": 1.0})
        store.record_run("b", config={"v": 1}, metrics={"m": 2.0})
        store.record_run("b", config={"v": 2}, metrics={"m": 99.0})
        history = store.metric_history("b", "m", config_hash=first.config_hash)
        assert history == [1.0, 2.0]
        assert store.metric_history(
            "b", "m", config_hash=first.config_hash, exclude_run_id=first.run_id
        ) == [2.0]
        store.close()

    def test_artifact_carries_the_provenance_stamp(self, tmp_path):
        store = ResultsStore()
        record = store.record_run(
            "figure1",
            config={"intervals": [1.0, 4.0]},
            metrics={"ordered_pct": 99.0},
            seed=1,
            git_rev="deadbee",
            created_at=5.0,
        )
        path = store.write_artifact(record, str(tmp_path))
        assert path.name == "BENCH_figure1.json"
        body = json.loads(path.read_text())
        assert body["config_hash"] == record.config_hash
        assert body["git_rev"] == "deadbee"
        assert body["seed"] == 1
        assert body["metrics"] == {"ordered_pct": 99.0}
        store.close()


class TestPerfGate:
    def test_seeding_mode_passes_with_sparse_baseline(self):
        result = gate_against_history("tps", 1.0, [5.0, 5.0])
        assert result.passed and result.status == "seeding"
        assert "seeding" in result.describe()

    def test_within_band_passes(self):
        result = gate_against_history("tps", 97.0, [100.0, 101.0, 99.0])
        assert result.passed and result.status == "within"

    def test_regression_fails_in_the_gated_direction_only(self):
        history = [100.0, 100.0, 100.0]
        low = gate_against_history("tps", 50.0, history, higher_is_better=True)
        assert not low.passed and low.status == "regressed"
        assert "REGRESSED" in low.describe()
        high = gate_against_history("tps", 150.0, history, higher_is_better=True)
        assert high.passed
        # Lower-is-better inverts which tail regresses.
        latency_up = gate_against_history("lat", 150.0, history, higher_is_better=False)
        assert not latency_up.passed
        assert gate_against_history("lat", 50.0, history, higher_is_better=False).passed

    def test_band_uses_sample_stddev_for_small_baselines(self):
        # Regression: the band was computed with the population (n) stddev,
        # understating the documented `sigmas * sample_stddev` band — worst
        # exactly at the minimum 3-sample baseline CI accumulates first.
        history = [10.0, 12.0, 14.0]
        # sample stddev = 2.0 (Bessel), population = sqrt(8/3) ~ 1.633;
        # the band must be 3 * 2.0 = 6.0, so the threshold is 12 - 6 = 6.
        result = gate_against_history("tps", 6.5, history)
        assert result.threshold == pytest.approx(6.0)
        # 6.5 sits outside the narrower population band (threshold ~7.1):
        # the biased band would have flagged a regression here.
        assert result.passed and result.status == "within"

    def test_slack_floor_tolerates_small_drift_of_constants(self):
        result = gate_against_history("events", 95.0, [100.0, 100.0, 100.0])
        assert result.passed  # within the 10% slack floor despite zero stddev

    def test_perf_gate_builds_baseline_from_like_for_like_runs(self):
        store = ResultsStore()
        for value in (100.0, 101.0, 99.0):
            store.record_run("bench", config={"v": 1}, metrics={"tps": value})
        # A differently-configured run must not pollute the baseline.
        store.record_run("bench", config={"v": 2}, metrics={"tps": 1.0})
        good = store.record_run("bench", config={"v": 1}, metrics={"tps": 98.0})
        gate = PerfGate(store)
        results = gate.assert_within_baseline(good, {"tps": True})
        assert [result.status for result in results] == ["within"]

        bad = store.record_run("bench", config={"v": 1}, metrics={"tps": 10.0})
        with pytest.raises(AssertionError, match="REGRESSED"):
            gate.assert_within_baseline(bad, {"tps": True})
        assert set(failures(gate.check(bad, {"tps": True}))) == {"tps"}
        store.close()

    def test_gate_skips_metrics_absent_from_the_record(self):
        store = ResultsStore()
        record = store.record_run("bench", config={}, metrics={"tps": 1.0})
        results = PerfGate(store).check(record, {"missing": True})
        assert results == []
        store.close()


class TestTrendReport:
    def test_report_lists_runs_and_marks_seeding(self):
        store = ResultsStore()
        store.record_run(
            "demo", config={"v": 1}, metrics={"tps": 100.0}, git_rev="abc", seed=4
        )
        report = render_trend_report(store)
        assert "demo" in report
        assert "tps" in report
        assert "seeding" in report
        store.close()

    def test_report_flags_drift(self):
        store = ResultsStore()
        for value in (100.0, 100.0, 100.0):
            store.record_run("demo", config={"v": 1}, metrics={"tps": value})
        store.record_run("demo", config={"v": 1}, metrics={"tps": 1.0})
        report = render_trend_report(store)
        assert "DRIFT" in report
        store.close()
