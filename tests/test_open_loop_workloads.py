"""Tests for open-loop arrival processes and the open-loop traffic engine."""

import os
import subprocess
import sys

import pytest

from repro import ClusterConfig, ReplicatedDatabase
from repro.chaos import build_chaos_cluster
from repro.errors import WorkloadError
from repro.simulation.randomness import RandomSource
from repro.verification import check_one_copy_serializability
from repro.workloads import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    HotKeyChurn,
    OnOffArrivals,
    OpenLoopSpec,
    OpenLoopTrafficEngine,
    PoissonArrivals,
    build_conflict_map,
    build_initial_data,
    build_partitioned_registry,
)


def stream(seed=11, salt="arrivals-test"):
    return RandomSource(seed).stream(salt)


def assert_valid_schedule(times, horizon):
    assert all(0.0 <= at < horizon for at in times)
    assert times == sorted(times)
    assert len(times) == len(set(times))


class TestPoissonArrivals:
    def test_schedule_is_increasing_and_bounded(self):
        times = PoissonArrivals(rate=500.0).arrival_times(stream(), horizon=0.5)
        assert_valid_schedule(times, 0.5)

    def test_mean_rate_matches(self):
        times = PoissonArrivals(rate=1000.0).arrival_times(stream(), horizon=2.0)
        assert len(times) == pytest.approx(2000, rel=0.1)

    def test_same_stream_same_schedule(self):
        process = PoissonArrivals(rate=800.0)
        first = process.arrival_times(stream(seed=3), horizon=0.25)
        second = process.arrival_times(stream(seed=3), horizon=0.25)
        assert first == second

    def test_rate_must_be_positive(self):
        with pytest.raises(WorkloadError, match="rate must be positive"):
            PoissonArrivals(rate=0.0)


class TestOnOffArrivals:
    def test_schedule_is_increasing_and_bounded(self):
        process = OnOffArrivals(on_rate=2000.0, mean_on=0.02, mean_off=0.02)
        times = process.arrival_times(stream(), horizon=0.4)
        assert_valid_schedule(times, 0.4)
        assert times  # the on-phases must actually produce arrivals

    def test_bursts_are_sparser_than_constant_peak_rate(self):
        # Roughly half the horizon is silent, so an on/off source at peak
        # rate R yields far fewer arrivals than a constant-R Poisson stream.
        on_off = OnOffArrivals(on_rate=2000.0, mean_on=0.02, mean_off=0.02)
        burst_count = len(on_off.arrival_times(stream(seed=5), horizon=1.0))
        poisson_count = len(
            PoissonArrivals(rate=2000.0).arrival_times(stream(seed=5), horizon=1.0)
        )
        assert burst_count < 0.8 * poisson_count

    def test_tail_alpha_must_exceed_one(self):
        with pytest.raises(WorkloadError, match="tail_alpha must exceed 1"):
            OnOffArrivals(on_rate=100.0, tail_alpha=1.0)


class TestDiurnalArrivals:
    def test_rate_curve_oscillates_about_the_base(self):
        process = DiurnalArrivals(base_rate=1000.0, amplitude=0.5, period=0.2)
        peak = max(process.rate_at(t / 1000) for t in range(200))
        trough = min(process.rate_at(t / 1000) for t in range(200))
        assert peak == pytest.approx(1500.0, rel=0.01)
        assert trough == pytest.approx(500.0, rel=0.01)

    def test_schedule_is_increasing_and_bounded(self):
        process = DiurnalArrivals(base_rate=800.0, amplitude=0.8, period=0.1)
        times = process.arrival_times(stream(), horizon=0.3)
        assert_valid_schedule(times, 0.3)

    def test_amplitude_must_stay_in_unit_interval(self):
        with pytest.raises(WorkloadError, match="amplitude"):
            DiurnalArrivals(base_rate=100.0, amplitude=1.5)


class TestFlashCrowdArrivals:
    def test_rate_curve_ramps_and_decays(self):
        process = FlashCrowdArrivals(
            base_rate=200.0, peak_multiplier=10.0, spike_at=0.05, ramp=0.01, decay=0.02
        )
        assert process.rate_at(0.0) == 200.0
        assert process.rate_at(0.06) == pytest.approx(2000.0)
        assert 200.0 < process.rate_at(0.2) < 2000.0
        assert process.rate_at(1.0) == pytest.approx(200.0, rel=0.01)

    def test_arrivals_cluster_around_the_spike(self):
        process = FlashCrowdArrivals(
            base_rate=300.0, peak_multiplier=8.0, spike_at=0.10, ramp=0.01, decay=0.03
        )
        times = process.arrival_times(stream(), horizon=0.2)
        assert_valid_schedule(times, 0.2)
        before = sum(1 for at in times if at < 0.10)
        after = sum(1 for at in times if at >= 0.10)
        assert after > 2 * before

    def test_peak_multiplier_at_least_one(self):
        with pytest.raises(WorkloadError, match="peak_multiplier"):
            FlashCrowdArrivals(base_rate=100.0, peak_multiplier=0.5)


class TestHotKeyChurn:
    def test_offset_advances_every_drift_interval(self):
        churn = HotKeyChurn(drift_interval=0.05, step=2)
        assert churn.hot_offset(0.0) == 0
        assert churn.hot_offset(0.049) == 0
        assert churn.hot_offset(0.05) == 2
        assert churn.hot_offset(0.26) == 10

    def test_validation(self):
        with pytest.raises(WorkloadError, match="drift_interval"):
            HotKeyChurn(drift_interval=0.0)
        with pytest.raises(WorkloadError, match="step"):
            HotKeyChurn(drift_interval=0.1, step=0)

    def test_engine_rotates_the_hotspot(self):
        # With extreme skew the Zipf rank is almost always 0, so the chosen
        # class tracks the churn rotation: early updates hit class 0, updates
        # after one drift interval hit class 1.
        spec = OpenLoopSpec(
            arrivals=PoissonArrivals(rate=2000.0),
            horizon=0.2,
            class_count=4,
            class_skew=50.0,
            churn=HotKeyChurn(drift_interval=0.1),
        )
        cluster = build_flat_cluster(spec, seed=9)
        plan = OpenLoopTrafficEngine(spec).build_plan(cluster)
        early = [
            operation.parameters["class_index"]
            for operation in plan.operations
            if operation.scheduled_at < 0.1
        ]
        late = [
            operation.parameters["class_index"]
            for operation in plan.operations
            if operation.scheduled_at >= 0.1
        ]
        assert early and late
        assert max(early, key=early.count) == 0
        assert max(late, key=late.count) == 1


class TestOpenLoopSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0.0},
            {"class_count": 0},
            {"objects_per_class": 0},
            {"query_fraction": 1.5},
            {"query_span": 0},
            {"class_skew": -1.0},
            {"operations_per_update": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        kwargs.setdefault("horizon", 0.1)
        with pytest.raises(WorkloadError):
            OpenLoopSpec(arrivals=PoissonArrivals(rate=100.0), **kwargs)

    def test_base_spec_mirrors_the_schema(self):
        spec = OpenLoopSpec(
            arrivals=PoissonArrivals(rate=100.0),
            horizon=0.1,
            class_count=3,
            objects_per_class=7,
            query_span=5,
        )
        base = spec.base_spec()
        assert base.class_count == 3
        assert base.objects_per_class == 7
        assert base.query_span == 3  # clamped to class_count


def build_flat_cluster(spec, *, seed, admission=None):
    base = spec.base_spec()
    return ReplicatedDatabase(
        ClusterConfig(site_count=4, seed=seed, admission=admission),
        build_partitioned_registry(base),
        conflict_map=build_conflict_map(base),
        initial_data=build_initial_data(base),
    )


def open_spec(**overrides):
    overrides.setdefault("arrivals", PoissonArrivals(rate=1200.0))
    overrides.setdefault("horizon", 0.1)
    overrides.setdefault("class_count", 4)
    return OpenLoopSpec(**overrides)


class TestOpenLoopPlan:
    def test_equal_seeds_equal_signatures(self):
        spec = open_spec(query_fraction=0.2)
        engine = OpenLoopTrafficEngine(spec)
        first = engine.build_plan(build_flat_cluster(spec, seed=21))
        second = engine.build_plan(build_flat_cluster(spec, seed=21))
        assert first.signature() == second.signature()

    def test_different_seeds_different_signatures(self):
        spec = open_spec()
        engine = OpenLoopTrafficEngine(spec)
        first = engine.build_plan(build_flat_cluster(spec, seed=21))
        second = engine.build_plan(build_flat_cluster(spec, seed=22))
        assert first.signature() != second.signature()

    def test_query_fraction_splits_the_stream(self):
        spec = open_spec(query_fraction=0.3, horizon=0.2)
        plan = OpenLoopTrafficEngine(spec).build_plan(build_flat_cluster(spec, seed=5))
        assert plan.query_count > 0
        assert plan.update_count > 0
        assert plan.update_count + plan.query_count == len(plan.operations)
        fraction = plan.query_count / len(plan.operations)
        assert fraction == pytest.approx(0.3, abs=0.1)

    def test_last_arrival_lies_inside_the_horizon(self):
        spec = open_spec()
        plan = OpenLoopTrafficEngine(spec).build_plan(build_flat_cluster(spec, seed=5))
        assert 0.0 < plan.last_arrival_time() < spec.horizon


class TestEngineAgainstFlatCluster:
    def test_all_offers_admitted_without_admission_config(self):
        spec = open_spec(query_fraction=0.1)
        cluster = build_flat_cluster(spec, seed=13)
        plan = OpenLoopTrafficEngine(spec).apply(cluster)
        cluster.run_until_idle()
        cluster.check_scheduler_invariants()
        assert plan.admitted_updates == plan.update_count
        assert plan.admitted_queries == plan.query_count
        assert plan.refused_updates == 0 and plan.refused_queries == 0
        counts = set(cluster.committed_counts().values())
        assert counts == {plan.update_count}
        check_one_copy_serializability(cluster.histories()).raise_if_violated()

    def test_apply_rejects_offers_scheduled_in_the_past(self):
        spec = open_spec()
        cluster = build_flat_cluster(spec, seed=13)
        cluster.kernel.schedule_at(1.0, lambda: None, label="advance")
        cluster.run_until_idle()
        with pytest.raises(WorkloadError, match="lies in the past"):
            OpenLoopTrafficEngine(spec).apply(cluster)


class TestEngineAgainstShardedCluster:
    def test_offers_resolve_to_owning_shards(self):
        cluster, shard_spec = build_chaos_cluster(31)
        spec = OpenLoopSpec(
            arrivals=PoissonArrivals(rate=900.0),
            horizon=0.1,
            class_count=shard_spec.class_count,
            objects_per_class=shard_spec.objects_per_class,
            query_fraction=0.1,
            query_span=shard_spec.query_span,
            update_duration=shard_spec.update_duration,
        )
        plan = OpenLoopTrafficEngine(spec).apply(cluster)
        cluster.run_until_idle()
        assert plan.admitted_updates == plan.update_count
        assert plan.admitted_queries == plan.query_count
        committed = sum(
            len(replica.submitted)
            for shard in cluster.shards.values()
            for replica in shard.replicas.values()
        )
        assert committed == plan.update_count
        for shard in cluster.shards.values():
            check_one_copy_serializability(shard.histories()).raise_if_violated()


SUBPROCESS_SNIPPET = (
    "from repro import ClusterConfig, ReplicatedDatabase;"
    "from repro.chaos import random_fuzz;"
    "from repro.workloads import ("
    "OpenLoopSpec, OpenLoopTrafficEngine, PoissonArrivals,"
    "build_conflict_map, build_initial_data, build_partitioned_registry);"
    "spec = OpenLoopSpec(arrivals=PoissonArrivals(rate=1500.0), horizon=0.08,"
    " class_count=4, query_fraction=0.2);"
    "base = spec.base_spec();"
    "cluster = ReplicatedDatabase(ClusterConfig(site_count=4, seed=17),"
    " build_partitioned_registry(base), conflict_map=build_conflict_map(base),"
    " initial_data=build_initial_data(base));"
    "print(OpenLoopTrafficEngine(spec).build_plan(cluster).signature());"
    "run = random_fuzz(seed=3);"
    "print(run.trace_signature(), run.committed, run.duration)"
)


def test_schedules_and_fuzz_traces_survive_hash_seed_changes():
    """Two PYTHONHASHSEED universes: same arrival schedule, same fault trace.

    The open-loop plan and the random-fuzz fault soup are both pure
    functions of the master seed, so their printed fingerprints must be
    byte-identical across interpreter hash seeds.
    """
    outputs = []
    for hash_seed in ("1", "2"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        completed = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        outputs.append(completed.stdout)
    assert outputs[0] == outputs[1]
