"""Tests for versioned objects, the multi-version store and snapshots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import MultiVersionStore, ObjectVersion, SnapshotManager, VersionChain
from repro.errors import DatabaseError, SnapshotError, UnknownObjectError


class TestVersionChain:
    def test_latest_returns_most_recent(self):
        chain = VersionChain(key="x")
        chain.append(ObjectVersion("x", 1, created_index=0, created_by="T1"))
        chain.append(ObjectVersion("x", 2, created_index=1, created_by="T2"))
        assert chain.latest().value == 2

    def test_visible_at_picks_greatest_index_not_exceeding_bound(self):
        chain = VersionChain(key="x")
        for index in range(5):
            chain.append(ObjectVersion("x", index * 10, created_index=index, created_by=f"T{index}"))
        assert chain.visible_at(2.5).value == 20
        assert chain.visible_at(0).value == 0
        assert chain.visible_at(100).value == 40

    def test_visible_at_before_first_version_is_none(self):
        chain = VersionChain(key="x")
        chain.append(ObjectVersion("x", 1, created_index=5, created_by="T5"))
        assert chain.visible_at(4.5) is None

    def test_mismatched_key_rejected(self):
        chain = VersionChain(key="x")
        with pytest.raises(DatabaseError):
            chain.append(ObjectVersion("y", 1, created_index=0, created_by="T1"))

    def test_decreasing_index_rejected(self):
        chain = VersionChain(key="x")
        chain.append(ObjectVersion("x", 1, created_index=5, created_by="T5"))
        with pytest.raises(DatabaseError):
            chain.append(ObjectVersion("x", 2, created_index=4, created_by="T4"))

    def test_remove_version(self):
        chain = VersionChain(key="x")
        chain.append(ObjectVersion("x", 1, created_index=0, created_by="T1"))
        chain.append(ObjectVersion("x", 2, created_index=1, created_by="T2"))
        assert chain.remove_version(1, "T2")
        assert chain.latest().value == 1
        assert not chain.remove_version(1, "T2")

    def test_prune_keeps_at_least_one_version(self):
        chain = VersionChain(key="x")
        for index in range(5):
            chain.append(ObjectVersion("x", index, created_index=index, created_by=f"T{index}"))
        removed = chain.prune_before(100, keep_at_least=1)
        assert removed == 4
        assert len(chain) == 1
        assert chain.latest().value == 4

    def test_prune_invalid_keep_rejected(self):
        with pytest.raises(DatabaseError):
            VersionChain(key="x").prune_before(1, keep_at_least=0)


class TestMultiVersionStore:
    def build_store(self):
        store = MultiVersionStore()
        store.load_many({"a": 1, "b": 2})
        return store

    def test_load_and_read_latest(self):
        store = self.build_store()
        assert store.read_latest("a") == 1
        assert store.exists("b")
        assert not store.exists("missing")

    def test_read_missing_raises(self):
        store = self.build_store()
        with pytest.raises(UnknownObjectError):
            store.read_latest("missing")

    def test_install_and_versioned_read(self):
        store = self.build_store()
        store.install("a", 10, created_index=0, created_by="T0")
        store.install("a", 20, created_index=3, created_by="T3")
        assert store.read_latest("a") == 20
        assert store.read_version("a", 0.5) == 10
        assert store.read_version("a", 2.9) == 10
        assert store.read_version("a", 3.5) == 20
        assert store.read_version("a", -1) == 1  # the initial load

    def test_read_version_before_anything_visible_raises(self):
        store = MultiVersionStore()
        store.install("fresh", 1, created_index=5, created_by="T5")
        with pytest.raises(UnknownObjectError):
            store.read_version("fresh", 2.0)

    def test_values_are_copied_on_read(self):
        store = MultiVersionStore()
        store.load("doc", {"items": [1, 2]})
        value = store.read_latest("doc")
        value["items"].append(3)
        assert store.read_latest("doc") == {"items": [1, 2]}

    def test_remove_version_supports_undo(self):
        store = self.build_store()
        store.install("a", 99, created_index=7, created_by="T7")
        assert store.remove_version("a", created_index=7, created_by="T7")
        assert store.read_latest("a") == 1
        assert not store.remove_version("missing", created_index=0, created_by="T")

    def test_dump_latest(self):
        store = self.build_store()
        store.install("a", 5, created_index=0, created_by="T0")
        assert store.dump_latest() == {"a": 5, "b": 2}
        assert store.dump_latest(keys=["b"]) == {"b": 2}

    def test_prune_removes_old_versions(self):
        store = MultiVersionStore()
        store.load("k", 0)
        for index in range(10):
            store.install("k", index, created_index=index, created_by=f"T{index}")
        removed = store.prune(8)
        assert removed > 0
        assert store.read_latest("k") == 9

    def test_stats_track_reads_and_writes(self):
        store = self.build_store()
        store.read_latest("a")
        store.read_version("a", 10)
        store.install("a", 2, created_index=0, created_by="T0")
        assert store.stats.reads == 1
        assert store.stats.snapshot_reads == 1
        assert store.stats.writes == 1

    @given(
        writes=st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.integers()),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_versioned_reads_return_last_write_at_or_before_index(self, writes):
        """Property: a snapshot read at index i sees the last write with index <= i."""
        store = MultiVersionStore()
        store.load("k", -999)
        ordered = sorted(writes, key=lambda item: item[0])
        installed = []
        last_index = None
        for index, value in ordered:
            if last_index is not None and index == last_index:
                continue  # keep strictly increasing indices for a clean oracle
            store.install("k", value, created_index=index, created_by=f"T{index}")
            installed.append((index, value))
            last_index = index
        for probe in range(-1, 32):
            visible = [value for index, value in installed if index <= probe]
            expected = visible[-1] if visible else -999
            assert store.read_version("k", probe + 0.5) == expected


class TestSnapshotManager:
    def test_query_index_is_last_processed_plus_half(self):
        store = MultiVersionStore()
        manager = SnapshotManager(store)
        assert manager.next_query_index() == pytest.approx(-0.5)
        for index in range(5):
            manager.advance(index)
        assert manager.next_query_index() == pytest.approx(4.5)

    def test_frontier_waits_for_gaps_to_fill(self):
        # Commits of different conflict classes may complete out of
        # definitive order; the query frontier must not jump a gap, or a
        # query could miss a smaller-indexed transaction that installs its
        # versions after the query already read.
        manager = SnapshotManager(MultiVersionStore())
        manager.advance(0)
        manager.advance(2)
        assert manager.last_processed_index == 0
        manager.advance(1)
        assert manager.last_processed_index == 2

    def test_replayed_advance_is_idempotent(self):
        manager = SnapshotManager(MultiVersionStore())
        for index in (0, 1, 1, 0):
            manager.advance(index)
        assert manager.last_processed_index == 1

    def test_snapshot_reads_are_stable_despite_later_commits(self):
        store = MultiVersionStore()
        store.load("x", 0)
        manager = SnapshotManager(store)
        store.install("x", 1, created_index=0, created_by="T0")
        manager.advance(0)
        snapshot = manager.snapshot()
        store.install("x", 2, created_index=1, created_by="T1")
        manager.advance(1)
        assert snapshot.read("x") == 1
        assert manager.snapshot().read("x") == 2

    def test_future_snapshot_rejected(self):
        manager = SnapshotManager(MultiVersionStore())
        with pytest.raises(SnapshotError):
            manager.snapshot(query_index=10.5)

    def test_read_many(self):
        store = MultiVersionStore()
        store.load_many({"x": 1, "y": 2})
        manager = SnapshotManager(store)
        snapshot = manager.snapshot()
        assert snapshot.read_many(["x", "y"]) == {"x": 1, "y": 2}

    def test_garbage_collect_respects_horizon(self):
        store = MultiVersionStore()
        store.load("x", 0)
        manager = SnapshotManager(store)
        for index in range(20):
            store.install("x", index, created_index=index, created_by=f"T{index}")
            manager.advance(index)
        removed = manager.garbage_collect(keep_last=2)
        assert removed > 0
        assert store.read_latest("x") == 19
        # Recent snapshots still work.
        assert manager.snapshot(query_index=18.5).read("x") == 18
