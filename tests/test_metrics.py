"""Tests for metric collection and summary statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Counter,
    Gauge,
    LatencyRecorder,
    MetricsCollector,
    Summary,
    confidence_interval_95,
    mean,
    percentile,
    ratio,
    stddev,
    summarize,
)


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0
        assert stddev([2.0, 2.0, 2.0]) == 0.0
        assert stddev([1.0]) == 0.0
        assert stddev([0.0, 2.0]) == pytest.approx(1.0)

    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile([5.0], 0.9) == 5.0
        assert percentile([], 0.5) == 0.0

    def test_percentile_invalid_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == pytest.approx(3.0)
        assert summary.p95 == pytest.approx(percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.95))
        assert summary.p90 <= summary.p95 <= summary.p99

    def test_summarize_single_value_percentiles(self):
        summary = summarize([7.0])
        assert summary.p50 == summary.p95 == summary.p99 == 7.0

    def test_summarize_empty(self):
        assert summarize([]) == Summary.empty()

    def test_confidence_interval(self):
        assert confidence_interval_95([1.0]) == 0.0
        assert confidence_interval_95([1.0, 2.0, 3.0]) > 0.0

    def test_ratio(self):
        assert ratio(1.0, 2.0) == 0.5
        assert ratio(1.0, 0.0) == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_summary_bounds_property(self, values):
        summary = summarize(values)
        # A small absolute tolerance absorbs floating-point accumulation error
        # in the mean (e.g. three identical large values).
        tolerance = 1e-6
        assert summary.minimum <= summary.p50 <= summary.maximum
        assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
        assert summary.p50 <= summary.p90 + 1e-9
        assert summary.p90 <= summary.p95 + 1e-9
        assert summary.p95 <= summary.p99 + 1e-9
        assert summary.count == len(values)


class TestCollector:
    def test_counter_increment(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_latency_recorder_summary(self):
        recorder = LatencyRecorder("lat")
        for value in (0.1, 0.2, 0.3):
            recorder.record(value)
        assert len(recorder) == 3
        assert recorder.summary().mean == pytest.approx(0.2)

    def test_collector_counters(self):
        metrics = MetricsCollector("test")
        metrics.increment("commits")
        metrics.increment("commits", 2)
        assert metrics.count("commits") == 3
        assert metrics.count("unknown") == 0
        assert metrics.counters() == {"commits": 3}

    def test_collector_latencies(self):
        metrics = MetricsCollector("test")
        metrics.record_latency("commit", 0.5)
        metrics.record_latency("commit", 1.5)
        assert metrics.latency_summary("commit").mean == pytest.approx(1.0)
        assert metrics.latency_summary("missing").count == 0

    def test_snapshot_contains_both(self):
        metrics = MetricsCollector("test")
        metrics.increment("a")
        metrics.record_latency("b", 0.1)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert "b" in snapshot["latencies"]

    def test_gauge_tracks_value_and_high_water(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.maximum == 7.0

    def test_collector_gauges(self):
        metrics = MetricsCollector("test")
        metrics.set_gauge("queue_depth", 4.0)
        metrics.set_gauge("queue_depth", 1.0)
        assert metrics.gauge("queue_depth").value == 1.0
        assert metrics.gauge_max("queue_depth") == 4.0
        assert metrics.gauge_max("missing") == 0.0
        snapshot = metrics.snapshot()
        assert snapshot["gauges"]["queue_depth"] == {"value": 1.0, "max": 4.0}
