"""Tests for the spontaneous-order measurement (paper Figure 1 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.spontaneous import (
    PROBE_KIND,
    PeriodicMulticastSource,
    order_agreement,
    receive_sequences,
    tentative_vs_definitive_mismatch,
)
from repro.errors import BroadcastError
from repro.network import ConstantLatency, LanMulticastLatency, NetworkTransport
from repro.simulation import SimulationKernel


def run_probe(interval, site_count=4, per_site=30, seed=0, latency=None, frame_time=0.0):
    kernel = SimulationKernel(seed=seed)
    transport = NetworkTransport(
        kernel,
        latency or LanMulticastLatency(),
        record_deliveries=True,
        medium_frame_time=frame_time,
    )
    sites = [f"N{index + 1}" for index in range(site_count)]
    for site in sites:
        transport.register_site(site, lambda envelope: None)
    for site in sites:
        PeriodicMulticastSource(
            kernel, transport, site, interval=interval, message_count=per_site
        ).start()
    kernel.run_until_idle()
    return transport


class TestPeriodicMulticastSource:
    def test_sends_exactly_message_count_messages(self):
        transport = run_probe(interval=0.001, site_count=2, per_site=10)
        assert transport.stats.multicasts_sent == 20

    def test_invalid_parameters_rejected(self):
        kernel = SimulationKernel()
        transport = NetworkTransport(kernel, ConstantLatency())
        transport.register_site("N1", lambda envelope: None)
        with pytest.raises(BroadcastError):
            PeriodicMulticastSource(kernel, transport, "N1", interval=-1.0, message_count=5)
        with pytest.raises(BroadcastError):
            PeriodicMulticastSource(kernel, transport, "N1", interval=0.001, message_count=0)


class TestReceiveSequences:
    def test_sequences_grouped_by_receiver(self):
        transport = run_probe(interval=0.002, site_count=3, per_site=5)
        sequences = receive_sequences(transport.delivery_log)
        assert set(sequences) == {"N1", "N2", "N3"}
        assert all(len(sequence) == 15 for sequence in sequences.values())

    def test_kind_filter(self):
        transport = run_probe(interval=0.002, site_count=2, per_site=5)
        assert receive_sequences(transport.delivery_log, kind="other") == {}


class TestOrderAgreement:
    def test_identical_sequences_are_fully_ordered(self):
        sequences = {"N1": ["a", "b", "c"], "N2": ["a", "b", "c"]}
        report = order_agreement(sequences)
        assert report.same_position_fraction == 1.0
        assert report.pairwise_agreement_fraction == 1.0

    def test_single_swap_detected(self):
        sequences = {"N1": ["a", "b", "c"], "N2": ["b", "a", "c"]}
        report = order_agreement(sequences)
        assert report.message_count == 3
        assert report.same_position_fraction == pytest.approx(1.0 / 3.0)
        assert report.mismatches_by_site["N2"] == 2

    def test_messages_not_received_everywhere_are_ignored(self):
        sequences = {"N1": ["a", "b", "c"], "N2": ["a", "c"]}
        report = order_agreement(sequences)
        assert report.message_count == 2
        assert report.same_position_fraction == 1.0

    def test_empty_input(self):
        report = order_agreement({})
        assert report.message_count == 0
        assert report.same_position_fraction == 1.0

    def test_constant_latency_gives_perfect_order(self):
        transport = run_probe(
            interval=0.002, latency=ConstantLatency(0.001), per_site=10
        )
        report = order_agreement(receive_sequences(transport.delivery_log))
        assert report.same_position_fraction == 1.0

    def test_larger_interval_improves_spontaneous_order(self):
        slow = run_probe(interval=0.004, per_site=60, seed=2, frame_time=0.0002)
        fast = run_probe(interval=0.0001, per_site=60, seed=2, frame_time=0.0002)
        slow_report = order_agreement(receive_sequences(slow.delivery_log))
        fast_report = order_agreement(receive_sequences(fast.delivery_log))
        assert slow_report.same_position_fraction >= fast_report.same_position_fraction

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=20, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_same_sequence_at_all_sites_is_always_fully_agreed(self, values):
        labels = [f"m{value}" for value in values]
        report = order_agreement({"N1": labels, "N2": list(labels), "N3": list(labels)})
        assert report.same_position_fraction == 1.0
        assert report.pairwise_agreement_fraction == 1.0


class TestTentativeVsDefinitiveMismatch:
    def test_identical_orders_have_zero_mismatch(self):
        assert tentative_vs_definitive_mismatch(["a", "b"], ["a", "b"]) == 0.0

    def test_full_reversal_has_full_mismatch(self):
        assert tentative_vs_definitive_mismatch(["a", "b"], ["b", "a"]) == 1.0

    def test_partial_mismatch(self):
        value = tentative_vs_definitive_mismatch(["a", "b", "c"], ["b", "a", "c"])
        assert value == pytest.approx(2.0 / 3.0)

    def test_empty_sequences(self):
        assert tentative_vs_definitive_mismatch([], []) == 0.0

    def test_only_common_messages_count(self):
        value = tentative_vs_definitive_mismatch(["a", "x", "b"], ["a", "b", "y"])
        assert value == 0.0
