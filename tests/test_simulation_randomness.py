"""Unit and property-based tests for the seeded random streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.randomness import RandomSource, RandomStream


class TestReproducibility:
    def test_same_seed_and_name_give_identical_sequences(self):
        one = RandomSource(7).stream("network")
        two = RandomSource(7).stream("network")
        assert [one.random() for _ in range(50)] == [two.random() for _ in range(50)]

    def test_different_names_give_different_sequences(self):
        source = RandomSource(7)
        first = [source.stream("a").random() for _ in range(10)]
        second = [source.stream("b").random() for _ in range(10)]
        assert first != second

    def test_different_seeds_give_different_sequences(self):
        one = RandomSource(1).stream("x")
        two = RandomSource(2).stream("x")
        assert [one.random() for _ in range(10)] != [two.random() for _ in range(10)]

    def test_stream_is_cached(self):
        source = RandomSource(3)
        assert source.stream("same") is source.stream("same")

    def test_streams_returns_all_names(self):
        source = RandomSource(3)
        streams = source.streams(["a", "b"])
        assert set(streams) == {"a", "b"}
        assert all(isinstance(stream, RandomStream) for stream in streams.values())

    def test_fork_is_deterministic(self):
        base = RandomSource(9)
        fork_one = base.fork("rep-1").stream("s")
        fork_two = RandomSource(9).fork("rep-1").stream("s")
        assert [fork_one.random() for _ in range(5)] == [fork_two.random() for _ in range(5)]

    def test_fork_is_deterministic_across_processes(self):
        # Regression: fork() used to derive the child seed with the builtin
        # hash(), whose string hashing is randomised per process
        # (PYTHONHASHSEED) — every *invocation* got different forked streams.
        # The content-hash derivation must give the same draws under any
        # hash seed.
        import os
        import subprocess
        import sys

        snippet = (
            "from repro.simulation.randomness import RandomSource;"
            "s = RandomSource(9).fork('rep-1').stream('s');"
            "print([s.randint(0, 10**9) for _ in range(5)])"
        )
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src_dir)
            completed = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert completed.returncode == 0, completed.stderr
            outputs.append(completed.stdout.strip())
        assert outputs[0] == outputs[1]


class TestDistributions:
    def test_uniform_within_bounds(self):
        stream = RandomSource(1).stream("u")
        for _ in range(200):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_exponential_nonnegative_and_mean_reasonable(self):
        stream = RandomSource(1).stream("e")
        samples = [stream.exponential(0.01) for _ in range(3000)]
        assert all(sample >= 0.0 for sample in samples)
        assert sum(samples) / len(samples) == pytest.approx(0.01, rel=0.15)

    def test_exponential_zero_mean_returns_zero(self):
        stream = RandomSource(1).stream("e0")
        assert stream.exponential(0.0) == 0.0

    def test_truncated_normal_respects_minimum(self):
        stream = RandomSource(1).stream("n")
        assert all(
            stream.truncated_normal(0.0, 1.0, minimum=0.5) >= 0.5 for _ in range(200)
        )

    def test_chance_extremes(self):
        stream = RandomSource(1).stream("c")
        assert not any(stream.chance(0.0) for _ in range(50))
        assert all(stream.chance(1.0) for _ in range(50))

    def test_randint_bounds(self):
        stream = RandomSource(1).stream("i")
        values = {stream.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_and_weighted_choice(self):
        stream = RandomSource(1).stream("w")
        assert stream.choice(["only"]) == "only"
        picks = {stream.weighted_choice(["a", "b"], [0.0, 1.0]) for _ in range(50)}
        assert picks == {"b"}

    def test_sample_returns_distinct_items(self):
        stream = RandomSource(1).stream("s")
        sample = stream.sample(range(10), 4)
        assert len(sample) == len(set(sample)) == 4

    def test_pareto_scale(self):
        stream = RandomSource(1).stream("p")
        assert all(stream.pareto(2.0, 1.5) >= 1.5 for _ in range(100))

    def test_shuffle_preserves_elements(self):
        stream = RandomSource(1).stream("sh")
        items = list(range(20))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestZipf:
    def test_zero_skew_is_roughly_uniform(self):
        stream = RandomSource(5).stream("z")
        counts = [0] * 4
        for _ in range(4000):
            counts[stream.zipf_index(4, 0.0)] += 1
        assert min(counts) > 800

    def test_high_skew_prefers_low_indices(self):
        stream = RandomSource(5).stream("z2")
        counts = [0] * 8
        for _ in range(4000):
            counts[stream.zipf_index(8, 1.5)] += 1
        assert counts[0] > counts[-1] * 3

    def test_invalid_size_rejected(self):
        stream = RandomSource(5).stream("z3")
        with pytest.raises(ValueError):
            stream.zipf_index(0, 1.0)

    @given(size=st.integers(min_value=1, max_value=50), skew=st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_zipf_index_always_in_range(self, size, skew):
        stream = RandomSource(11).stream(f"zprop-{size}-{skew}")
        index = stream.zipf_index(size, skew)
        assert 0 <= index < size
