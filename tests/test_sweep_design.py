"""Tests for the factorial design layer and the parallel sweep executor."""

import os
import subprocess
import sys

import pytest

from repro.harness.design import Design, RunSpec, derive_run_seed
from repro.harness.parallel import (
    RunFailure,
    SweepError,
    SweepExecutor,
    execute_spec,
    resolve_runner,
)

PROBE = "repro.harness.cells:seed_probe_cell"


def _probe_design(**overrides):
    settings = dict(
        name="probe",
        factors={"alpha": (1, 2), "beta": ("x", "y")},
        seeds=range(2),
    )
    settings.update(overrides)
    return Design(**settings)


class TestDesignExpansion:
    def test_size_and_order_cross_in_declaration_order(self):
        design = _probe_design()
        specs = design.expand()
        assert design.size == len(specs) == 8
        assert [spec.index for spec in specs] == list(range(8))
        # First factor varies slowest, seed index fastest.
        assert [
            (spec.factors["alpha"], spec.factors["beta"], spec.seed_index)
            for spec in specs[:4]
        ] == [(1, "x", 0), (1, "x", 1), (1, "y", 0), (1, "y", 1)]

    def test_base_parameters_reach_every_spec(self):
        design = _probe_design(base={"sites": 4})
        for spec in design.expand():
            assert spec.base == {"sites": 4}
            assert spec.params()["sites"] == 4
            assert spec.params()["alpha"] == spec.factors["alpha"]

    def test_seed_derivation_depends_on_cell_and_replicate_only(self):
        specs = _probe_design().expand()
        seeds = [spec.seed for spec in specs]
        assert len(set(seeds)) == len(seeds)  # every run independent
        # Base parameters do not enter the derivation: a sizing tweak must
        # not reshuffle the randomness of an otherwise identical grid.
        resized = _probe_design(base={"sites": 99}).expand()
        assert [spec.seed for spec in resized] == seeds
        # But the design name, factor values and seed index all do.
        assert derive_run_seed("probe", {"alpha": 1, "beta": "x"}, 0) == seeds[0]
        assert derive_run_seed("other", {"alpha": 1, "beta": "x"}, 0) != seeds[0]
        assert derive_run_seed("probe", {"alpha": 1, "beta": "x"}, 1) != seeds[0]

    def test_validation_rejects_bad_designs(self):
        with pytest.raises(ValueError, match="non-empty name"):
            Design(name="", factors={"a": [1]})
        with pytest.raises(ValueError, match="declares no factors"):
            Design(name="d", factors={})
        with pytest.raises(ValueError, match="has no levels"):
            Design(name="d", factors={"a": []})
        with pytest.raises(ValueError, match="repeats level"):
            Design(name="d", factors={"a": [1, 1]})
        with pytest.raises(ValueError, match="both a factor and a base"):
            Design(name="d", factors={"a": [1]}, base={"a": 2})
        with pytest.raises(ValueError, match="seeds must be non-empty"):
            Design(name="d", factors={"a": [1]}, seeds=())

    def test_expansion_is_deterministic_across_hash_seeds(self):
        # The derived seeds are SHA-256 content hashes (the RandomSource.fork
        # scheme), so two processes with different PYTHONHASHSEEDs must
        # expand the same design to identical spec lists AND produce
        # identical merged sweep results through the parallel executor.
        snippet = (
            "from repro.harness.design import Design;"
            "from repro.harness.parallel import SweepExecutor;"
            "d = Design(name='probe', factors={'alpha': (1, 2), 'beta': ('x', 'y')},"
            " seeds=range(2));"
            "print([(s.index, s.factors, s.seed) for s in d.expand()]);"
            f"r = SweepExecutor(jobs=2).run(d, {PROBE!r});"
            "print(r.rows)"
        )
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src_dir)
            completed = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert completed.returncode == 0, completed.stderr
            outputs.append(completed.stdout)
        assert outputs[0] == outputs[1]


class TestRunnerResolution:
    def test_resolves_dotted_path(self):
        runner = resolve_runner(PROBE)
        assert callable(runner)

    def test_rejects_malformed_paths(self):
        with pytest.raises(ValueError, match="package.module:function"):
            resolve_runner("repro.harness.cells.seed_probe_cell")
        with pytest.raises(ValueError, match="package.module:function"):
            resolve_runner(":seed_probe_cell")

    def test_rejects_non_callable_target(self):
        with pytest.raises(TypeError, match="non-callable"):
            resolve_runner("repro.harness.cells:__doc__")

    def test_execute_spec_captures_worker_side_errors(self):
        spec = Design(name="d", factors={"fail": [True]}).expand()[0]
        status, payload = execute_spec(
            "repro.harness.cells:failing_probe_cell", spec
        )
        assert status == "error"
        assert "was told to fail" in payload


class TestSweepExecutor:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            SweepExecutor(jobs=0)

    def test_serial_and_parallel_reports_are_identical(self):
        design = _probe_design()
        serial = SweepExecutor(jobs=1).run(design, PROBE)
        parallel = SweepExecutor(jobs=3).run(design, PROBE)
        assert serial.ok and parallel.ok
        assert serial.rows == parallel.rows
        assert serial.specs == parallel.specs
        assert serial.require_rows() == parallel.require_rows()
        # Rows come back in spec order regardless of completion order.
        assert [row["alpha"] for row in serial.require_rows()] == [
            spec.factors["alpha"] for spec in design.expand()
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_partial_failure_surfaces_spec_and_keeps_other_rows(self, jobs):
        design = Design(
            name="partial", factors={"fail": (False, True)}, seeds=(0, 1)
        )
        report = SweepExecutor(jobs=jobs).run(
            design, "repro.harness.cells:failing_probe_cell"
        )
        assert not report.ok
        assert len(report.rows) == 4
        assert report.rows[0] is not None and report.rows[1] is not None
        assert report.rows[2] is None and report.rows[3] is None
        assert len(report.failures) == 2
        failure = report.failures[0]
        assert isinstance(failure, RunFailure)
        assert failure.spec.factors == {"fail": True}
        assert "was told to fail" in failure.error
        assert "fail=True" in failure.describe()
        with pytest.raises(SweepError, match="2 of 4 runs"):
            report.require_rows()

    def test_worker_crash_becomes_per_run_failure(self):
        # A worker that dies outright (os._exit — same face as a segfault)
        # must not kill the sweep: the affected specs become failures and
        # the executor still returns a full report.
        design = Design(
            name="crashy", factors={"fail": (False, True)}, seeds=(0,)
        )
        report = SweepExecutor(jobs=2).run(
            design, "repro.harness.cells:exiting_probe_cell"
        )
        assert len(report.rows) == 2
        assert report.failures
        assert all(failure.spec.factors["fail"] for failure in report.failures)
        with pytest.raises(SweepError):
            report.require_rows()

    def test_elapsed_uses_injected_clock(self):
        ticks = iter([10.0, 17.5])
        executor = SweepExecutor(jobs=1, clock=lambda: next(ticks))
        report = executor.run(_probe_design(), PROBE)
        assert report.elapsed_seconds == pytest.approx(7.5)


class TestSpecPickling:
    def test_runspec_round_trips_through_pickle(self):
        import pickle

        spec = _probe_design(base={"sites": 4}).expand()[3]
        clone = pickle.loads(pickle.dumps(spec))
        assert isinstance(clone, RunSpec)
        assert clone == spec
        assert clone.params() == spec.params()
