"""Unit tests for crash injection and the heartbeat failure detector."""

import pytest

from repro.errors import NetworkError
from repro.failure import CrashManager, CrashSchedule, FailureDetector
from repro.network import ConstantLatency, NetworkTransport
from repro.network.dispatcher import SiteDispatcher
from repro.simulation import SimulationKernel


def build_cluster(site_count=3, seed=0):
    kernel = SimulationKernel(seed=seed)
    transport = NetworkTransport(kernel, ConstantLatency(0.001))
    dispatchers = {}
    for index in range(site_count):
        site = f"N{index + 1}"
        dispatchers[site] = SiteDispatcher(transport, site)
    return kernel, transport, dispatchers


class TestCrashSchedule:
    def test_crash_for_creates_pair(self):
        schedule = CrashSchedule().crash_for("N1", at=1.0, duration=2.0)
        events = schedule.sorted_events()
        assert [(event.time, event.up) for event in events] == [(1.0, False), (3.0, True)]

    def test_events_sorted_by_time(self):
        schedule = CrashSchedule().recover("N1", at=5.0).crash("N1", at=1.0)
        assert [event.time for event in schedule.sorted_events()] == [1.0, 5.0]

    def test_zero_duration_rejected(self):
        with pytest.raises(NetworkError):
            CrashSchedule().crash_for("N1", at=1.0, duration=0.0)


class TestCrashManager:
    def test_crash_and_recovery_change_transport_state(self):
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        manager.apply_schedule(CrashSchedule().crash_for("N2", at=0.010, duration=0.020))
        kernel.run(until=0.015)
        assert not transport.is_site_up("N2")
        assert not manager.is_up("N2")
        kernel.run(until=0.050)
        assert transport.is_site_up("N2")
        assert manager.crash_count("N2") == 1

    def test_listeners_notified_on_change(self):
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        changes = []
        manager.add_listener(lambda site, up: changes.append((site, up)))
        manager.crash_now("N1")
        manager.recover_now("N1")
        assert changes == [("N1", False), ("N1", True)]

    def test_redundant_transitions_are_ignored(self):
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        changes = []
        manager.add_listener(lambda site, up: changes.append((site, up)))
        manager.recover_now("N1")  # already up
        assert changes == []

    def test_up_sites_lists_only_live_sites(self):
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        manager.crash_now("N3")
        assert manager.up_sites() == ["N1", "N2"]

    def test_crash_of_already_down_site_is_a_noop(self):
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        changes = []
        manager.add_listener(lambda site, up: changes.append((site, up)))
        manager.crash_now("N2")
        manager.crash_now("N2")  # second crash must not fire or count
        assert changes == [("N2", False)]
        assert manager.crash_count("N2") == 1
        assert not transport.is_site_up("N2")

    def test_recovery_without_prior_crash_is_a_noop(self):
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        changes = []
        manager.add_listener(lambda site, up: changes.append((site, up)))
        manager.recover_now("N1")  # sites default to up
        assert changes == []
        assert manager.crash_count("N1") == 0
        assert manager.is_up("N1")

    def test_scheduled_redundant_events_collapse(self):
        # A schedule that crashes the same site twice and recovers it twice
        # produces exactly one crash and one recovery notification.
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        changes = []
        manager.add_listener(lambda site, up: changes.append((site, up)))
        schedule = (
            CrashSchedule()
            .crash("N1", at=0.010)
            .crash("N1", at=0.020)
            .recover("N1", at=0.030)
            .recover("N1", at=0.040)
        )
        manager.apply_schedule(schedule)
        kernel.run_until_idle()
        assert changes == [("N1", False), ("N1", True)]
        assert manager.crash_count("N1") == 1

    def test_listeners_notified_in_registration_order(self):
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        order = []
        manager.add_listener(lambda site, up: order.append(("first", site, up)))
        manager.add_listener(lambda site, up: order.append(("second", site, up)))
        manager.crash_now("N1")
        manager.recover_now("N1")
        assert order == [
            ("first", "N1", False),
            ("second", "N1", False),
            ("first", "N1", True),
            ("second", "N1", True),
        ]

    def test_same_time_events_apply_in_site_order(self):
        # sorted_events breaks time ties by site id, so a deterministic
        # schedule results even when several sites crash at the same instant.
        kernel, transport, _ = build_cluster()
        manager = CrashManager(kernel, transport)
        changes = []
        manager.add_listener(lambda site, up: changes.append(site))
        schedule = CrashSchedule().crash("N3", at=0.010).crash("N1", at=0.010)
        assert [event.site for event in schedule.sorted_events()] == ["N1", "N3"]
        manager.apply_schedule(schedule)
        kernel.run_until_idle()
        assert changes == ["N1", "N3"]


class TestFailureDetector:
    def build_detectors(self, site_count=3, **kwargs):
        kernel, transport, dispatchers = build_cluster(site_count=site_count)
        detectors = {}
        for site, dispatcher in dispatchers.items():
            detector = FailureDetector(kernel, transport, site, **kwargs)
            dispatcher.register_kind(
                "failure-detector.heartbeat", detector.on_envelope
            )
            detectors[site] = detector
        return kernel, transport, detectors

    def test_no_suspicions_without_crashes(self):
        kernel, transport, detectors = self.build_detectors()
        for detector in detectors.values():
            detector.start()
        kernel.run(until=0.5)
        assert all(not detector.suspected_sites() for detector in detectors.values())

    def test_crashed_site_becomes_suspected(self):
        kernel, transport, detectors = self.build_detectors()
        for detector in detectors.values():
            detector.start()
        manager = CrashManager(kernel, transport)
        kernel.run(until=0.1)
        manager.crash_now("N3")
        detectors["N3"].stop()
        kernel.run(until=0.5)
        assert detectors["N1"].is_suspected("N3")
        assert detectors["N2"].is_suspected("N3")
        assert "N3" not in detectors["N1"].trusted_sites()

    def test_recovered_site_is_trusted_again_and_timeout_grows(self):
        kernel, transport, detectors = self.build_detectors()
        for detector in detectors.values():
            detector.start()
        manager = CrashManager(kernel, transport)
        kernel.run(until=0.1)
        manager.crash_now("N3")
        detectors["N3"].stop()
        kernel.run(until=0.4)
        assert detectors["N1"].is_suspected("N3")
        manager.recover_now("N3")
        detectors["N3"].reset()
        detectors["N3"].start()
        kernel.run(until=1.0)
        assert not detectors["N1"].is_suspected("N3")

    def test_suspicion_listener_fires_on_both_transitions(self):
        kernel, transport, detectors = self.build_detectors()
        for detector in detectors.values():
            detector.start()
        events = []
        detectors["N1"].add_listener(lambda peer, suspected: events.append((peer, suspected)))
        manager = CrashManager(kernel, transport)
        kernel.run(until=0.1)
        manager.crash_now("N2")
        detectors["N2"].stop()
        kernel.run(until=0.4)
        manager.recover_now("N2")
        detectors["N2"].start()
        kernel.run(until=1.0)
        assert ("N2", True) in events
        assert ("N2", False) in events

    def test_stopped_detector_does_not_send_heartbeats(self):
        kernel, transport, detectors = self.build_detectors(site_count=2)
        detectors["N1"].start()
        detectors["N1"].stop()
        detectors["N2"].start()
        kernel.run(until=0.3)
        # N2 never hears from N1 and eventually suspects it.
        assert detectors["N2"].is_suspected("N1")

    def test_stale_heartbeat_does_not_rewind_liveness(self):
        # A heal flushes held envelopes in arrival order, so a heartbeat
        # older than the freshest one seen can arrive *after* it.  The stale
        # one must neither rewind _last_heard nor lift a suspicion.
        from repro.failure.detector import Heartbeat

        kernel, transport, detectors = self.build_detectors(site_count=2)
        detector = detectors["N2"]
        detector.start()
        kernel.run(until=0.010)
        detector._on_heartbeat(Heartbeat(origin="N1", sequence=5))
        heard_at_fresh = detector._last_heard["N1"]
        kernel.run(until=0.020)
        detector._on_heartbeat(Heartbeat(origin="N1", sequence=3))  # stale
        assert detector._last_heard["N1"] == heard_at_fresh
        assert detector._last_sequence["N1"] == 5
        # Duplicate of the freshest sequence is equally ignored.
        kernel.run(until=0.030)
        detector._on_heartbeat(Heartbeat(origin="N1", sequence=5))
        assert detector._last_heard["N1"] == heard_at_fresh

    def test_stale_heartbeat_does_not_lift_suspicion(self):
        from repro.failure.detector import Heartbeat

        kernel, transport, detectors = self.build_detectors(site_count=2)
        detector = detectors["N2"]
        detector.start()
        detector._on_heartbeat(Heartbeat(origin="N1", sequence=8))
        detectors["N1"].stop()  # N1 stays silent from here on
        kernel.run(until=0.3)
        assert detector.is_suspected("N1")
        # A flushed stale heartbeat must not make N1 look alive again...
        detector._on_heartbeat(Heartbeat(origin="N1", sequence=2))
        assert detector.is_suspected("N1")
        # ...but a genuinely newer one does, and widens the timeout.
        detector._on_heartbeat(Heartbeat(origin="N1", sequence=9))
        assert not detector.is_suspected("N1")
        assert detector.timeout_for("N1") == pytest.approx(
            detector.initial_timeout + detector.timeout_increment
        )

    def test_false_suspicion_under_latency_spike_adapts_timeout(self):
        # A latency spike (no crash) delays heartbeats past the timeout: the
        # peer is falsely suspected, then re-trusted when traffic recovers,
        # and the timeout grows so an identical spike no longer misleads —
        # the eventual-accuracy half of the ◇P contract.
        kernel, transport, detectors = self.build_detectors(site_count=2)
        for detector in detectors.values():
            detector.start()
        kernel.run(until=0.050)
        assert not detectors["N1"].is_suspected("N2")
        initial = detectors["N1"].timeout_for("N2")

        transport.latency_model = ConstantLatency(0.120)  # >> 50 ms timeout
        kernel.run(until=0.150)
        assert detectors["N1"].is_suspected("N2")

        transport.latency_model = ConstantLatency(0.001)
        kernel.run(until=0.400)
        assert not detectors["N1"].is_suspected("N2")
        assert detectors["N1"].timeout_for("N2") > initial

    def test_asymmetric_partition_yields_one_sided_suspicion(self):
        # Sever only N1 -> N2: N2 stops hearing N1 and suspects it, while
        # N1 keeps hearing N2 and trusts it.  Restoring the link flushes the
        # held (stale) heartbeats and fresh ones re-establish trust.
        kernel, transport, detectors = self.build_detectors(site_count=2)
        for detector in detectors.values():
            detector.start()
        kernel.run(until=0.050)
        transport.partitions.sever("N1", "N2", at_time=kernel.now())
        kernel.run(until=0.200)
        assert detectors["N2"].is_suspected("N1")
        assert not detectors["N1"].is_suspected("N2")

        transport.partitions.restore("N1", "N2", at_time=kernel.now())
        kernel.run(until=0.500)
        assert not detectors["N2"].is_suspected("N1")
        assert not detectors["N1"].is_suspected("N2")

    def test_detector_with_group_ignores_outside_sites(self):
        # Two disjoint groups on one transport (the sharded layout): group
        # detectors neither heartbeat nor monitor the other group's sites.
        kernel, transport, dispatchers = build_cluster(site_count=4)
        groups = {"A": ["N1", "N2"], "B": ["N3", "N4"]}
        detectors = {}
        for group_sites in groups.values():
            for site in group_sites:
                detector = FailureDetector(
                    kernel, transport, site, group=group_sites
                )
                dispatchers[site].register_kind(
                    "failure-detector.heartbeat", detector.on_envelope
                )
                detector.start()
                detectors[site] = detector
        detectors["N3"].stop()
        detectors["N4"].stop()  # whole group B silent
        kernel.run(until=0.4)
        # Group A never monitored B's sites, so nothing is suspected.
        assert detectors["N1"].suspected_sites() == set()
        assert detectors["N1"].trusted_sites() == ["N1", "N2"]
