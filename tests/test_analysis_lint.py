"""Golden-fixture tests for the determinism & isolation lint suite.

Each rule gets at least one fixture that MUST fire (true positive) and one
that MUST stay silent (true negative), so the rule pack cannot silently go
blind.  The suppression pragma contract, the JSON output schema, the
exit-code contract and the baseline round-trip are covered against
``tools/lint.py`` itself.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import LintEngine, default_rules
from repro.analysis.baseline import (
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import (
    KernelHotPathAllocationRule,
    NoCrossSiteOracleRule,
    NoUnorderedIterationRule,
    NoWallclockRule,
    SeededRandomnessRule,
    TracerGuardRule,
)

import tools.lint as lint_cli


@pytest.fixture()
def engine():
    return LintEngine(default_rules())


def rules_of(findings):
    return [finding.rule for finding in findings]


def lint(engine, source, scope="core/module.py"):
    return engine.lint_source(source, path=scope, scope_path=scope)


# --------------------------------------------------------------------- rules
class TestNoWallclock:
    POSITIVE = "import time\n\nstamp = time.time()\n"
    NEGATIVE = "def stamp(kernel):\n    return kernel.now()\n"

    def test_positive_time_module(self, engine):
        findings = lint(engine, self.POSITIVE)
        assert rules_of(findings) == ["no-wallclock"]
        assert findings[0].line == 3
        assert "kernel.now()" in findings[0].hint

    def test_positive_from_import_and_datetime(self, engine):
        assert rules_of(
            lint(engine, "from time import monotonic\nx = monotonic()\n")
        ) == ["no-wallclock"]
        assert rules_of(
            lint(engine, "from datetime import datetime\nd = datetime.now()\n")
        ) == ["no-wallclock"]

    def test_negative(self, engine):
        assert lint(engine, self.NEGATIVE) == []

    def test_allowlisted_boundary_module_is_exempt(self, engine):
        findings = engine.lint_source(
            self.POSITIVE,
            path="observability/wallclock.py",
            scope_path="observability/wallclock.py",
        )
        assert findings == []

    def test_time_sleep_is_not_a_clock_read(self, engine):
        assert lint(engine, "import time\ntime.sleep(1)\n") == []


class TestSeededRandomnessOnly:
    POSITIVE = "import random\n\nvalue = random.random()\n"
    NEGATIVE = (
        "def jitter(kernel):\n"
        '    return kernel.random.stream("net").uniform(0.0, 1.0)\n'
    )

    def test_positive_module_level_random(self, engine):
        findings = lint(engine, self.POSITIVE)
        assert rules_of(findings) == ["seeded-randomness-only"]
        assert "RandomStream" in findings[0].hint

    def test_positive_unseeded_random_even_in_wrapper(self, engine):
        findings = engine.lint_source(
            "import random\nrng = random.Random()\n",
            path="simulation/randomness.py",
            scope_path="simulation/randomness.py",
        )
        assert rules_of(findings) == ["seeded-randomness-only"]

    def test_negative(self, engine):
        assert lint(engine, self.NEGATIVE) == []

    def test_wrapper_module_may_construct_seeded_random(self, engine):
        findings = engine.lint_source(
            "import random\nrng = random.Random(42)\n",
            path="simulation/randomness.py",
            scope_path="simulation/randomness.py",
        )
        assert findings == []


class TestNoUnorderedIteration:
    POSITIVE = (
        "def schedule_all(pending: set):\n"
        "    for item in pending:\n"
        "        schedule(item)\n"
    )
    NEGATIVE = (
        "def schedule_all(pending: set):\n"
        "    for item in sorted(pending):\n"
        "        schedule(item)\n"
    )

    def test_positive_for_loop(self, engine):
        findings = lint(engine, self.POSITIVE, scope="broadcast/endpoint.py")
        assert rules_of(findings) == ["no-unordered-iteration"]
        assert findings[0].line == 2

    def test_negative_sorted(self, engine):
        assert lint(engine, self.NEGATIVE, scope="broadcast/endpoint.py") == []

    def test_positive_inferred_local_and_attribute(self, engine):
        source = (
            "class Endpoint:\n"
            "    def __init__(self):\n"
            "        self._pending = set()\n"
            "    def flush(self):\n"
            "        return [p for p in self._pending]\n"
        )
        findings = lint(engine, source, scope="core/endpoint.py")
        assert rules_of(findings) == ["no-unordered-iteration"]

    def test_positive_list_materialisation(self, engine):
        source = "ids = {1, 2, 3}\nordered = list(ids)\n"
        assert rules_of(lint(engine, source, scope="simulation/x.py")) == [
            "no-unordered-iteration"
        ]

    def test_negative_membership_and_aggregates(self, engine):
        source = (
            "ids = {1, 2, 3}\n"
            "present = 2 in ids\n"
            "count = len(ids)\n"
            "top = max(ids)\n"
        )
        assert lint(engine, source, scope="core/x.py") == []

    def test_negative_outside_scoped_packages(self, engine):
        findings = engine.lint_source(
            self.POSITIVE, path="metrics/x.py", scope_path="metrics/x.py"
        )
        assert findings == []

    def test_positive_workloads_in_scope(self, engine):
        # Workload generation feeds the protocol: a hash-ordered span of
        # conflict classes changes which histories a seed produces.
        findings = lint(engine, self.POSITIVE, scope="workloads/x.py")
        assert rules_of(findings) == ["no-unordered-iteration"]

    def test_negative_dict_iteration_is_order_documented(self, engine):
        source = "def f(d: dict):\n    for k in d:\n        use(k)\n"
        assert lint(engine, source, scope="core/x.py") == []


class TestTracerGuard:
    POSITIVE = (
        "class Replica:\n"
        "    def commit(self):\n"
        '        self.tracer.record("commit")\n'
    )
    NEGATIVE = (
        "class Replica:\n"
        "    def commit(self):\n"
        "        if self.tracer is not None:\n"
        '            self.tracer.record("commit")\n'
    )

    def test_positive_unguarded_call(self, engine):
        findings = lint(engine, self.POSITIVE)
        assert rules_of(findings) == ["tracer-guard"]
        assert "self.tracer" in findings[0].message

    def test_negative_guarded(self, engine):
        assert lint(engine, self.NEGATIVE) == []

    def test_negative_early_return_guard(self, engine):
        source = (
            "class Replica:\n"
            "    def commit(self):\n"
            "        if self.tracer is None:\n"
            "            return\n"
            '        self.tracer.record("commit")\n'
        )
        assert lint(engine, source) == []

    def test_negative_and_short_circuit(self, engine):
        source = (
            "class Replica:\n"
            "    def commit(self):\n"
            '        ok = self.tracer is not None and self.tracer.record("c")\n'
        )
        assert lint(engine, source) == []

    def test_positive_guard_on_different_receiver(self, engine):
        source = (
            "class Replica:\n"
            "    def commit(self, other):\n"
            "        if other.tracer is not None:\n"
            '            self.tracer.record("commit")\n'
        )
        assert rules_of(lint(engine, source)) == ["tracer-guard"]

    def test_guard_does_not_leak_out_of_branch(self, engine):
        source = (
            "class Replica:\n"
            "    def commit(self):\n"
            "        if self.tracer is not None:\n"
            "            pass\n"
            '        self.tracer.record("commit")\n'
        )
        assert rules_of(lint(engine, source)) == ["tracer-guard"]


class TestNoCrossSiteOracle:
    POSITIVE = (
        "class Scheduler:\n"
        "    def steal_state(self, peer):\n"
        "        return peer.commit_frontier\n"
    )
    NEGATIVE = (
        "class Replica:\n"
        "    def catch_up_from(self, donor):\n"
        "        return donor.commit_frontier\n"
    )

    def test_positive_peer_dereference(self, engine):
        findings = lint(engine, self.POSITIVE)
        assert rules_of(findings) == ["no-cross-site-oracle"]
        assert "peer.commit_frontier" in findings[0].message

    def test_negative_declared_donor_path(self, engine):
        assert lint(engine, self.NEGATIVE) == []

    def test_positive_registry_private_reach(self, engine):
        source = (
            "def poke(cluster, site):\n"
            "    return cluster.replicas[site]._redo_log\n"
        )
        assert rules_of(lint(engine, source, scope="failure/x.py")) == [
            "no-cross-site-oracle"
        ]

    def test_positive_crash_manager_ground_truth(self, engine):
        source = (
            "class Governor:\n"
            "    def elect(self, site):\n"
            "        return self.crash_manager.is_up(site)\n"
        )
        findings = lint(engine, source, scope="failure/x.py")
        assert rules_of(findings) == ["no-cross-site-oracle"]
        assert "ground truth" in findings[0].message

    def test_negative_network_layer_is_exempt(self, engine):
        findings = engine.lint_source(
            self.POSITIVE, path="network/x.py", scope_path="network/x.py"
        )
        assert findings == []


class TestKernelHotPathAllocation:
    POSITIVE = (
        "def run(queue):\n"
        "    # repro: hot-path\n"
        "    while queue:\n"
        "        event = queue.pop()\n"
        "        label = f'{event}'\n"
    )
    NEGATIVE = (
        "def run(queue):\n"
        "    # repro: hot-path\n"
        "    while queue:\n"
        "        event = queue.pop()\n"
        "        event.callback()\n"
    )

    def test_positive_fstring_in_marked_loop(self, engine):
        findings = lint(engine, self.POSITIVE, scope="simulation/kernel.py")
        assert rules_of(findings) == ["kernel-hot-path-allocation"]
        assert "f-string" in findings[0].message

    def test_negative_lean_loop(self, engine):
        assert lint(engine, self.NEGATIVE, scope="simulation/kernel.py") == []

    def test_positive_comprehension_and_dict_call(self, engine):
        source = (
            "def run(items):\n"
            "    # repro: hot-path\n"
            "    for i in items:\n"
            "        a = [x for x in i]\n"
            "        b = dict()\n"
        )
        findings = lint(engine, source, scope="simulation/x.py")
        assert rules_of(findings) == ["kernel-hot-path-allocation"] * 2

    def test_unmarked_loop_is_not_checked(self, engine):
        source = (
            "def run(items):\n"
            "    for i in items:\n"
            "        a = [x for x in i]\n"
        )
        assert lint(engine, source, scope="simulation/x.py") == []

    def test_marker_without_loop_is_reported(self, engine):
        source = "# repro: hot-path\nx = 1\n"
        findings = lint(engine, source, scope="simulation/x.py")
        assert rules_of(findings) == ["kernel-hot-path-allocation"]
        assert "no loop" in findings[0].message


# --------------------------------------------------------------- suppressions
class TestSuppressionPragmas:
    def test_pragma_with_reason_suppresses(self, engine):
        source = (
            "import time\n"
            "stamp = time.time()  # repro: allow[no-wallclock] -- provenance stamp\n"
        )
        assert lint(engine, source) == []

    def test_pragma_missing_reason_is_a_finding(self, engine):
        source = "import time\nstamp = time.time()  # repro: allow[no-wallclock]\n"
        findings = lint(engine, source)
        assert sorted(rules_of(findings)) == ["bad-suppression", "no-wallclock"]

    def test_pragma_with_unknown_rule_is_a_finding(self, engine):
        source = "x = 1  # repro: allow[no-such-rule] -- because\n"
        findings = lint(engine, source)
        assert rules_of(findings) == ["bad-suppression"]
        assert "no-such-rule" in findings[0].message

    def test_unused_pragma_is_a_finding(self, engine):
        source = "x = 1  # repro: allow[no-wallclock] -- just in case\n"
        findings = lint(engine, source)
        assert rules_of(findings) == ["unused-suppression"]

    def test_standalone_pragma_applies_to_next_code_line(self, engine):
        source = (
            "import time\n"
            "# repro: allow[no-wallclock] -- provenance stamp\n"
            "stamp = time.time()\n"
        )
        assert lint(engine, source) == []

    def test_pragma_only_silences_named_rule(self, engine):
        source = (
            "import time, random\n"
            "x = (time.time(), random.random())  "
            "# repro: allow[no-wallclock] -- stamp\n"
        )
        findings = lint(engine, source)
        assert rules_of(findings) == ["seeded-randomness-only"]

    def test_meta_rules_cannot_be_suppressed(self, engine):
        source = "x = 1  # repro: allow[unused-suppression] -- gaming the linter\n"
        findings = lint(engine, source)
        assert rules_of(findings) == ["bad-suppression"]

    def test_malformed_pragma_is_a_finding(self, engine):
        source = "x = 1  # repro: allow no-wallclock -- forgot brackets\n"
        findings = lint(engine, source)
        assert rules_of(findings) == ["bad-suppression"]
        assert "malformed" in findings[0].message


# ------------------------------------------------------------------ CLI layer
def write_tree(root: Path, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


CLEAN_FILE = "def now(kernel):\n    return kernel.now()\n"
DIRTY_FILE = "import time\n\nstamp = time.time()\n"


class TestLintCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/clean.py": CLEAN_FILE})
        assert lint_cli.main([str(tmp_path / "pkg")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/dirty.py": DIRTY_FILE})
        assert lint_cli.main([str(tmp_path / "pkg")]) == 1
        out = capsys.readouterr().out
        assert "no-wallclock" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert lint_cli.main([str(tmp_path / "absent")]) == 2

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/broken.py": "def f(:\n"})
        assert lint_cli.main([str(tmp_path / "pkg")]) == 2
        assert "syntax error" in capsys.readouterr().out

    def test_report_only_exits_zero_with_findings(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/dirty.py": DIRTY_FILE})
        assert lint_cli.main([str(tmp_path / "pkg"), "--report-only"]) == 0

    def test_json_schema(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/dirty.py": DIRTY_FILE})
        code = lint_cli.main([str(tmp_path / "pkg"), "--format", "json"])
        assert code == 1
        body = json.loads(capsys.readouterr().out)
        assert body["version"] == 1
        assert body["exit_code"] == 1
        assert body["files_scanned"] == 1
        assert body["counts_by_rule"] == {"no-wallclock": 1}
        assert set(body["rules"]) >= {
            "no-wallclock",
            "seeded-randomness-only",
            "no-unordered-iteration",
            "tracer-guard",
            "no-cross-site-oracle",
            "kernel-hot-path-allocation",
        }
        (finding,) = body["findings"]
        assert set(finding) == {"path", "line", "column", "rule", "message", "hint"}
        assert finding["line"] == 3
        assert finding["path"].endswith("dirty.py")

    def test_list_rules(self, capsys):
        assert lint_cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "no-wallclock:" in out
        assert "kernel-hot-path-allocation:" in out

    def test_record_db_files_debt_in_results_store(self, tmp_path, capsys):
        from repro.observability.store import ResultsStore

        write_tree(tmp_path, {"pkg/dirty.py": DIRTY_FILE})
        db = tmp_path / "results.sqlite"
        code = lint_cli.main(
            [
                str(tmp_path / "pkg"),
                "--report-only",
                "--record-db",
                str(db),
                "--record-name",
                "lint_debt_tests",
            ]
        )
        assert code == 0
        store = ResultsStore(str(db))
        try:
            (run,) = store.runs("lint_debt_tests")
            assert run.metrics["findings_total"] == 1.0
            assert run.metrics["findings_no_wallclock"] == 1.0
        finally:
            store.close()


class TestBaseline:
    def test_round_trip_grandfathers_old_findings_only(self, tmp_path, engine):
        write_tree(tmp_path, {"pkg/dirty.py": DIRTY_FILE})
        report = engine.lint_paths([tmp_path / "pkg"])
        assert len(report.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(report.findings, str(baseline_path))
        baseline = load_baseline(str(baseline_path))
        fresh, matched = filter_baselined(report.findings, baseline)
        assert fresh == [] and matched == 1
        # A new finding on a different line is NOT grandfathered.
        write_tree(
            tmp_path,
            {"pkg/dirty.py": DIRTY_FILE + "import random\nx = random.random()\n"},
        )
        report = engine.lint_paths([tmp_path / "pkg"])
        fresh, matched = filter_baselined(report.findings, baseline)
        assert matched == 1
        assert rules_of(fresh) == ["seeded-randomness-only"]

    def test_cli_baseline_flag(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/dirty.py": DIRTY_FILE})
        baseline_path = tmp_path / "baseline.json"
        assert (
            lint_cli.main(
                [str(tmp_path / "pkg"), "--write-baseline", str(baseline_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            lint_cli.main([str(tmp_path / "pkg"), "--baseline", str(baseline_path)])
            == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_bad_baseline_is_exit_two(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/dirty.py": DIRTY_FILE})
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 99}", encoding="utf-8")
        assert lint_cli.main([str(tmp_path / "pkg"), "--baseline", str(bad)]) == 2


# -------------------------------------------------- the repo's own invariants
class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        repo_root = Path(__file__).resolve().parent.parent
        engine = LintEngine(default_rules())
        report = engine.lint_paths([repo_root / "src" / "repro"])
        assert report.errors == []
        assert report.findings == [], "\n".join(
            finding.render() for finding in report.findings
        )

    def test_module_cli_entrypoint(self):
        repo_root = Path(__file__).resolve().parent.parent
        completed = subprocess.run(
            [sys.executable, "-m", "tools.lint", "src/repro", "--format", "json"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        body = json.loads(completed.stdout)
        assert body["findings"] == []
