"""Unit tests for the OTP scheduler (Serialization / Execution / Correctness-Check).

These tests drive the scheduler directly with Opt-deliver / TO-deliver events
and include the two worked examples of paper Section 3.3 as well as the
reordering scenario of Section 3.2.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import ExecutionEngine
from repro.core.scheduler import OTPScheduler
from repro.database import (
    DeliveryState,
    ExecutionState,
    MultiVersionStore,
    ProcedureRegistry,
    StoredProcedure,
    Transaction,
    TransactionRequest,
)
from repro.errors import SchedulerError
from repro.simulation import SimulationKernel


class SchedulerHarness:
    """A single-site OTP scheduler with a controllable execution duration."""

    def __init__(self, duration=0.010, seed=0):
        self.kernel = SimulationKernel(seed=seed)
        self.store = MultiVersionStore()
        self.store.load_many({f"obj:{index}": 0 for index in range(10)})
        self.registry = ProcedureRegistry()

        def body(ctx, params):
            key = params.get("key", "obj:0")
            ctx.write(key, ctx.read_or_default(key, 0) + 1)
            return params.get("label")

        self.registry.register(
            StoredProcedure(name="work", body=body, conflict_class="C", duration=duration)
        )
        self.engine = ExecutionEngine(self.kernel, self.store, self.registry, "N1")
        self.committed = []
        self.scheduler = OTPScheduler(
            self.kernel, self.engine, commit_callback=self.committed.append
        )
        self._counter = 0

    def transaction(self, txn_id, conflict_class="Cx"):
        request = TransactionRequest(
            transaction_id=txn_id,
            procedure_name="work",
            parameters={"label": txn_id},
            conflict_class=conflict_class,
            origin_site="N1",
            submitted_at=self.kernel.now(),
        )
        return Transaction(request=request, site_id="N1")

    def opt_deliver(self, transaction):
        self.scheduler.on_opt_deliver(transaction)

    def to_deliver(self, transaction, index=None):
        if index is None:
            index = self._counter
        self._counter = max(self._counter, index) + 1
        self.scheduler.on_to_deliver(transaction.transaction_id, index)

    def committed_ids(self):
        return [transaction.transaction_id for transaction in self.committed]


class TestSerializationModule:
    def test_first_transaction_in_queue_starts_executing(self):
        harness = SchedulerHarness()
        transaction = harness.transaction("T1")
        harness.opt_deliver(transaction)
        assert transaction.executing
        assert harness.scheduler.queue_for("Cx").first() is transaction

    def test_second_transaction_of_same_class_waits(self):
        harness = SchedulerHarness()
        first = harness.transaction("T1")
        second = harness.transaction("T2")
        harness.opt_deliver(first)
        harness.opt_deliver(second)
        assert first.executing
        assert not second.executing

    def test_transactions_of_different_classes_execute_concurrently(self):
        harness = SchedulerHarness()
        first = harness.transaction("T1", conflict_class="Cx")
        second = harness.transaction("T2", conflict_class="Cy")
        harness.opt_deliver(first)
        harness.opt_deliver(second)
        assert first.executing and second.executing

    def test_duplicate_opt_delivery_rejected(self):
        harness = SchedulerHarness()
        transaction = harness.transaction("T1")
        harness.opt_deliver(transaction)
        with pytest.raises(SchedulerError):
            harness.opt_deliver(transaction)


class TestExecutionModule:
    def test_executed_but_pending_transaction_waits_for_to_delivery(self):
        harness = SchedulerHarness(duration=0.01)
        transaction = harness.transaction("T1")
        harness.opt_deliver(transaction)
        harness.kernel.run_until_idle()
        assert transaction.execution_state is ExecutionState.EXECUTED
        assert transaction.delivery_state is DeliveryState.PENDING
        assert harness.committed == []

    def test_executed_and_committable_transaction_commits(self):
        harness = SchedulerHarness(duration=0.01)
        transaction = harness.transaction("T1")
        harness.opt_deliver(transaction)
        harness.to_deliver(transaction, index=0)
        harness.kernel.run_until_idle()
        assert harness.committed_ids() == ["T1"]
        assert transaction.is_committed
        assert transaction.global_index == 0

    def test_commit_starts_next_transaction_in_queue(self):
        harness = SchedulerHarness(duration=0.01)
        first = harness.transaction("T1")
        second = harness.transaction("T2")
        harness.opt_deliver(first)
        harness.opt_deliver(second)
        harness.to_deliver(first, index=0)
        harness.to_deliver(second, index=1)
        harness.kernel.run_until_idle()
        assert harness.committed_ids() == ["T1", "T2"]
        # The second transaction only started executing after the first
        # committed (sequential execution within a class).
        assert second.first_execution_started_at >= first.committed_at


class TestCorrectnessCheckModule:
    def test_to_delivery_of_executed_head_commits_immediately(self):
        harness = SchedulerHarness(duration=0.005)
        transaction = harness.transaction("T1")
        harness.opt_deliver(transaction)
        harness.kernel.run_until_idle()  # fully executed, still pending
        harness.to_deliver(transaction, index=0)
        assert transaction.is_committed

    def test_to_delivery_before_opt_delivery_is_rejected(self):
        harness = SchedulerHarness()
        transaction = harness.transaction("T1")
        with pytest.raises(SchedulerError):
            harness.scheduler.on_to_deliver(transaction.transaction_id, 0)

    def test_paper_example_one_committable_head_is_not_aborted(self):
        """Section 3.3, first example: CQ = T1[a,c], T2[a,p], T3[a,p].

        T3 is TO-delivered next; it must be rescheduled between T1 and T2
        without aborting T1 (which is committable and still executing).
        """
        harness = SchedulerHarness(duration=0.050)
        t1, t2, t3 = (harness.transaction(f"T{i}") for i in (1, 2, 3))
        for transaction in (t1, t2, t3):
            harness.opt_deliver(transaction)
        harness.to_deliver(t1, index=0)   # T1 becomes [a,c], still executing
        assert t1.executing
        harness.to_deliver(t3, index=1)   # T3 TO-delivered before T2
        queue = harness.scheduler.queue_for("Cx")
        assert [entry.transaction_id for entry in queue] == ["T1", "T3", "T2"]
        assert t1.reorder_aborts == 0
        assert t1.executing  # not disturbed
        harness.kernel.run_until_idle()
        harness.to_deliver(t2, index=2)
        harness.kernel.run_until_idle()
        assert harness.committed_ids() == ["T1", "T3", "T2"]

    def test_paper_example_two_pending_executed_head_is_aborted(self):
        """Section 3.3, second example: CQ = T1[e,p], T2[a,p], T3[a,p].

        T3 is TO-delivered first; T1 must be aborted (undone), T3 moves to
        the head and executes, and T1 is re-executed later.
        """
        harness = SchedulerHarness(duration=0.010)
        t1, t2, t3 = (harness.transaction(f"T{i}") for i in (1, 2, 3))
        for transaction in (t1, t2, t3):
            harness.opt_deliver(transaction)
        harness.kernel.run_until_idle()  # T1 executes fully -> [e,p]
        assert t1.execution_state is ExecutionState.EXECUTED
        harness.to_deliver(t3, index=0)
        queue = harness.scheduler.queue_for("Cx")
        assert [entry.transaction_id for entry in queue] == ["T3", "T1", "T2"]
        assert t1.reorder_aborts == 1
        assert t1.execution_state is ExecutionState.ACTIVE
        assert t3.executing
        harness.to_deliver(t1, index=1)
        harness.to_deliver(t2, index=2)
        harness.kernel.run_until_idle()
        assert harness.committed_ids() == ["T3", "T1", "T2"]
        assert t1.execution_attempts == 2

    def test_executing_pending_head_is_cancelled_on_reorder(self):
        """Section 3.2 scenario at N': T6 executing when T5 is TO-delivered first."""
        harness = SchedulerHarness(duration=0.050)
        t6 = harness.transaction("T6")
        t5 = harness.transaction("T5")
        harness.opt_deliver(t6)  # tentative order: T6 before T5
        harness.opt_deliver(t5)
        harness.kernel.run(until=0.010)
        assert t6.executing
        harness.to_deliver(t5, index=0)  # definitive order: T5 first
        assert t6.reorder_aborts == 1
        assert not t6.executing
        assert t5.executing
        harness.to_deliver(t6, index=1)
        harness.kernel.run_until_idle()
        assert harness.committed_ids() == ["T5", "T6"]

    def test_mismatch_between_non_conflicting_transactions_costs_nothing(self):
        """Section 3.2: T2/T3 swapped at N' but in different classes -> no aborts."""
        harness = SchedulerHarness(duration=0.010)
        t2 = harness.transaction("T2", conflict_class="Cx")
        t3 = harness.transaction("T3", conflict_class="Cy")
        # Tentative order: T3 before T2 (opposite of definitive order).
        harness.opt_deliver(t3)
        harness.opt_deliver(t2)
        harness.to_deliver(t2, index=0)
        harness.to_deliver(t3, index=1)
        harness.kernel.run_until_idle()
        assert t2.reorder_aborts == 0
        assert t3.reorder_aborts == 0
        assert set(harness.committed_ids()) == {"T2", "T3"}

    def test_to_delivery_after_commit_rejected(self):
        harness = SchedulerHarness(duration=0.001)
        transaction = harness.transaction("T1")
        harness.opt_deliver(transaction)
        harness.to_deliver(transaction, index=0)
        harness.kernel.run_until_idle()
        with pytest.raises(SchedulerError):
            harness.scheduler.on_to_deliver("T1", 5)

    def test_check_invariants_passes_in_normal_operation(self):
        harness = SchedulerHarness(duration=0.010)
        transactions = [harness.transaction(f"T{i}") for i in range(5)]
        for transaction in transactions:
            harness.opt_deliver(transaction)
        for index, transaction in enumerate(reversed(transactions)):
            harness.to_deliver(transaction, index=index)
            harness.scheduler.check_invariants()
        harness.kernel.run_until_idle()
        harness.scheduler.check_invariants()


class TestTheorems:
    def test_starvation_freedom_every_to_delivered_transaction_commits(self):
        """Theorem 4.1: every TO-delivered transaction eventually commits,
        even when the definitive order is the reverse of the tentative one."""
        harness = SchedulerHarness(duration=0.004)
        transactions = [harness.transaction(f"T{i}") for i in range(8)]
        for transaction in transactions:
            harness.opt_deliver(transaction)
        # Definitive order is the exact reverse of the tentative order.
        for index, transaction in enumerate(reversed(transactions)):
            harness.to_deliver(transaction, index=index)
        harness.kernel.run_until_idle()
        assert set(harness.committed_ids()) == {f"T{i}" for i in range(8)}

    def test_conflicting_transactions_commit_in_definitive_order(self):
        """Lemma 4.1: same-class transactions commit in TO-delivery order."""
        harness = SchedulerHarness(duration=0.003)
        transactions = [harness.transaction(f"T{i}") for i in range(6)]
        for transaction in transactions:
            harness.opt_deliver(transaction)
        definitive = [3, 0, 5, 1, 4, 2]
        for position, transaction_index in enumerate(definitive):
            harness.to_deliver(transactions[transaction_index], index=position)
        harness.kernel.run_until_idle()
        assert harness.committed_ids() == [f"T{i}" for i in definitive]

    @given(
        count=st.integers(min_value=1, max_value=7),
        order_seed=st.integers(min_value=0, max_value=1000),
        class_count=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_commit_order_follows_definitive_order_per_class(
        self, count, order_seed, class_count
    ):
        """Property: for any random definitive order and class assignment,
        every transaction commits and same-class commits follow that order."""
        import random

        rng = random.Random(order_seed)
        harness = SchedulerHarness(duration=0.002, seed=order_seed)
        transactions = [
            harness.transaction(f"T{i}", conflict_class=f"C{rng.randrange(class_count)}")
            for i in range(count)
        ]
        for transaction in transactions:
            harness.opt_deliver(transaction)
        definitive = list(range(count))
        rng.shuffle(definitive)
        for position, transaction_index in enumerate(definitive):
            harness.to_deliver(transactions[transaction_index], index=position)
        harness.kernel.run_until_idle()
        harness.scheduler.check_invariants()
        assert len(harness.committed) == count
        definitive_ids = [transactions[i].transaction_id for i in definitive]
        for class_id in {t.conflict_class for t in transactions}:
            committed_of_class = [
                t.transaction_id for t in harness.committed if t.conflict_class == class_id
            ]
            expected = [
                txn_id
                for txn_id in definitive_ids
                if txn_id in set(committed_of_class)
            ]
            assert committed_of_class == expected
