"""Tests for workload specs, generated procedures and the workload generator."""

import pytest

from repro import ClusterConfig, ReplicatedDatabase
from repro.core.config import BROADCAST_OPTIMISTIC
from repro.errors import WorkloadError
from repro.workloads import (
    READ_CLASSES_QUERY,
    SUM_ALL_QUERY,
    UPDATE_PROCEDURE,
    WorkloadGenerator,
    WorkloadSpec,
    build_conflict_map,
    build_initial_data,
    build_partitioned_registry,
    partition_class_id,
    partition_key,
)


class TestWorkloadSpec:
    def test_defaults_are_valid(self):
        spec = WorkloadSpec()
        assert spec.class_count >= 1
        assert spec.effective_query_span <= spec.class_count

    def test_totals(self):
        spec = WorkloadSpec(updates_per_site=10, queries_per_site=3)
        assert spec.total_updates(4) == 40
        assert spec.total_queries(4) == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"class_count": 0},
            {"objects_per_class": 0},
            {"updates_per_site": -1},
            {"update_interval": -0.1},
            {"query_span": 0},
            {"operations_per_update": 0},
            {"class_skew": -1.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**kwargs)

    def test_query_span_clamped(self):
        spec = WorkloadSpec(class_count=2, query_span=10)
        assert spec.effective_query_span == 2

    def test_partition_naming(self):
        assert partition_class_id(3) == "C3"
        assert partition_key(3, 7) == "part3:obj7"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queries_per_site": -1},
            {"query_interval": -0.001},
        ],
    )
    def test_remaining_negative_values_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**kwargs)

    def test_boundary_values_accepted(self):
        # Degenerate-but-valid corners: a single class and object, no load,
        # zero think time (back-to-back submissions) and zero durations.
        spec = WorkloadSpec(
            class_count=1,
            objects_per_class=1,
            updates_per_site=0,
            queries_per_site=0,
            update_interval=0.0,
            query_interval=0.0,
            query_span=1,
            class_skew=0.0,
            operations_per_update=1,
            update_duration=0.0,
            query_duration=0.0,
        )
        assert spec.total_updates(8) == 0
        assert spec.total_queries(8) == 0
        assert spec.effective_query_span == 1

    def test_operations_per_update_may_exceed_partition_size(self):
        # The generator clamps the per-update object count to the partition
        # size, so a spec asking for more operations than objects is valid.
        spec = WorkloadSpec(objects_per_class=2, operations_per_update=10)
        assert spec.operations_per_update == 10


class TestZipfClassSkew:
    def seeded_stream(self, seed=42):
        from repro.simulation.randomness import RandomSource

        return RandomSource(seed).stream("zipf-test")

    def test_fixed_seed_reproduces_identical_sample_sequence(self):
        stream_a, stream_b = self.seeded_stream(), self.seeded_stream()
        sequence_a = [stream_a.zipf_index(8, 1.5) for _ in range(500)]
        sequence_b = [stream_b.zipf_index(8, 1.5) for _ in range(500)]
        assert sequence_a == sequence_b

    def test_different_seeds_diverge(self):
        sequence_a = [self.seeded_stream(1).zipf_index(8, 1.5) for _ in range(50)]
        sequence_b = [self.seeded_stream(2).zipf_index(8, 1.5) for _ in range(50)]
        assert sequence_a != sequence_b

    def test_zero_skew_is_uniform_draw(self):
        stream = self.seeded_stream()
        draws = [stream.zipf_index(4, 0.0) for _ in range(2000)]
        counts = {index: draws.count(index) for index in range(4)}
        assert set(counts) == {0, 1, 2, 3}
        # Uniform: no class should dominate (loose 2x bound on expectation).
        assert max(counts.values()) < 2 * (2000 / 4)

    def test_positive_skew_ranks_classes_monotonically(self):
        stream = self.seeded_stream()
        draws = [stream.zipf_index(6, 2.0) for _ in range(4000)]
        counts = [draws.count(index) for index in range(6)]
        # Zipf with skew 2: class 0 hottest, frequencies non-increasing in
        # expectation; check the strong head-vs-tail signal, not exact order.
        assert counts[0] > counts[1] > counts[5]
        assert counts[0] > 4000 / 2  # head weight 1/(1^2) dominates

    def test_draws_always_in_range(self):
        stream = self.seeded_stream()
        for skew in (0.0, 0.5, 3.0):
            assert all(0 <= stream.zipf_index(3, skew) < 3 for _ in range(200))

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            self.seeded_stream().zipf_index(0, 1.0)

    def test_generator_class_choice_deterministic_under_fixed_seed(self):
        spec = WorkloadSpec(updates_per_site=40, class_count=6, class_skew=1.5)

        def class_sequence(seed):
            cluster = ReplicatedDatabase(
                ClusterConfig(site_count=2, seed=seed, broadcast=BROADCAST_OPTIMISTIC),
                build_partitioned_registry(spec),
                initial_data=build_initial_data(spec),
            )
            plan = WorkloadGenerator(spec).apply(cluster)
            return [
                operation.parameters["class_index"]
                for operation in plan.operations
                if not operation.is_query
            ]

        assert class_sequence(7) == class_sequence(7)
        assert class_sequence(7) != class_sequence(8)


class TestGeneratedProcedures:
    def test_initial_data_covers_all_partitions(self):
        spec = WorkloadSpec(class_count=3, objects_per_class=5, initial_value=42)
        data = build_initial_data(spec)
        assert len(data) == 15
        assert data[partition_key(2, 4)] == 42

    def test_registry_contains_expected_procedures(self):
        registry = build_partitioned_registry(WorkloadSpec())
        assert UPDATE_PROCEDURE in registry
        assert READ_CLASSES_QUERY in registry
        assert SUM_ALL_QUERY in registry
        assert registry.get(READ_CLASSES_QUERY).is_query
        assert not registry.get(UPDATE_PROCEDURE).is_query

    def test_update_procedure_maps_to_partition_class(self):
        registry = build_partitioned_registry(WorkloadSpec())
        assert registry.get(UPDATE_PROCEDURE).resolve_conflict_class({"class_index": 5}) == "C5"

    def test_conflict_map_assigns_keys_to_partitions(self):
        conflict_map = build_conflict_map(WorkloadSpec(class_count=4))
        assert conflict_map.class_of_key(partition_key(2, 9)) == "C2"
        assert len(conflict_map) == 4


class TestWorkloadGenerator:
    def build_cluster(self, spec, seed=1):
        return ReplicatedDatabase(
            ClusterConfig(site_count=3, seed=seed, broadcast=BROADCAST_OPTIMISTIC),
            build_partitioned_registry(spec),
            initial_data=build_initial_data(spec),
        )

    def test_plan_has_expected_operation_counts(self):
        spec = WorkloadSpec(updates_per_site=5, queries_per_site=2)
        cluster = self.build_cluster(spec)
        plan = WorkloadGenerator(spec).apply(cluster)
        assert plan.update_count == 15
        assert plan.query_count == 6
        assert plan.last_submission_time() > 0.0

    def test_same_seed_produces_identical_plan(self):
        spec = WorkloadSpec(updates_per_site=5, queries_per_site=2)
        plan_a = WorkloadGenerator(spec).apply(self.build_cluster(spec, seed=7))
        plan_b = WorkloadGenerator(spec).apply(self.build_cluster(spec, seed=7))
        assert [
            (op.site_id, op.procedure_name, op.scheduled_at, str(op.parameters))
            for op in plan_a.operations
        ] == [
            (op.site_id, op.procedure_name, op.scheduled_at, str(op.parameters))
            for op in plan_b.operations
        ]

    def test_different_seeds_produce_different_plans(self):
        spec = WorkloadSpec(updates_per_site=10)
        plan_a = WorkloadGenerator(spec).apply(self.build_cluster(spec, seed=1))
        plan_b = WorkloadGenerator(spec).apply(self.build_cluster(spec, seed=2))
        assert [op.scheduled_at for op in plan_a.operations] != [
            op.scheduled_at for op in plan_b.operations
        ]

    def test_applied_workload_runs_to_completion_and_commits_everything(self):
        spec = WorkloadSpec(updates_per_site=8, queries_per_site=2, class_count=4)
        cluster = self.build_cluster(spec)
        plan = WorkloadGenerator(spec).apply(cluster)
        cluster.run_until_idle()
        counts = set(cluster.committed_counts().values())
        assert counts == {plan.update_count}
        assert cluster.database_divergence() == {}

    def test_class_skew_concentrates_updates(self):
        spec = WorkloadSpec(updates_per_site=60, class_count=6, class_skew=2.0)
        cluster = self.build_cluster(spec)
        plan = WorkloadGenerator(spec).apply(cluster)
        class_counts = {}
        for operation in plan.operations:
            class_counts[operation.parameters["class_index"]] = (
                class_counts.get(operation.parameters["class_index"], 0) + 1
            )
        assert class_counts.get(0, 0) > class_counts.get(5, 0)

    def test_query_parameters_reference_valid_classes(self):
        spec = WorkloadSpec(queries_per_site=5, class_count=3, query_span=2)
        cluster = self.build_cluster(spec)
        plan = WorkloadGenerator(spec).apply(cluster)
        for operation in plan.operations:
            if operation.is_query:
                assert all(0 <= index < 3 for index in operation.parameters["class_indexes"])
