"""Tests for the lock table, undo/redo recovery and history/conflict graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import (
    CommittedTransaction,
    ConflictGraph,
    DeadlockDetected,
    LockMode,
    LockTable,
    MultiVersionStore,
    RedoLog,
    SiteHistory,
    UndoLog,
    history_is_serializable,
    transactions_conflict,
)
from repro.errors import VerificationError


class TestLockTable:
    def test_exclusive_lock_granted_then_blocks_others(self):
        table = LockTable()
        assert table.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert not table.acquire("T2", "x", LockMode.EXCLUSIVE)
        assert table.holders_of("x") == ["T1"]
        assert table.waiting_on("x") == ["T2"]

    def test_shared_locks_are_compatible(self):
        table = LockTable()
        assert table.acquire("T1", "x", LockMode.SHARED)
        assert table.acquire("T2", "x", LockMode.SHARED)
        assert set(table.holders_of("x")) == {"T1", "T2"}

    def test_shared_then_exclusive_waits(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.SHARED)
        assert not table.acquire("T2", "x", LockMode.EXCLUSIVE)

    def test_release_grants_next_waiter(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.EXCLUSIVE)
        table.acquire("T2", "x", LockMode.EXCLUSIVE)
        unblocked = table.release("T1", "x")
        assert unblocked == ["T2"]
        assert table.holders_of("x") == ["T2"]

    def test_fifo_fairness_shared_behind_exclusive_waits(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.EXCLUSIVE)
        table.acquire("T2", "x", LockMode.EXCLUSIVE)
        assert not table.acquire("T3", "x", LockMode.SHARED)

    def test_reentrant_acquire_is_granted(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.SHARED)
        assert table.acquire("T1", "x", LockMode.SHARED)

    def test_upgrade_from_shared_to_exclusive_when_sole_holder(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.SHARED)
        assert table.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert table.holds("T1", "x", LockMode.EXCLUSIVE)

    def test_upgrade_blocked_when_other_holders(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.SHARED)
        table.acquire("T2", "x", LockMode.SHARED)
        assert not table.acquire("T1", "x", LockMode.EXCLUSIVE)

    def test_release_all_cleans_up_and_unblocks(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.EXCLUSIVE)
        table.acquire("T1", "y", LockMode.EXCLUSIVE)
        table.acquire("T2", "x", LockMode.EXCLUSIVE)
        unblocked = table.release_all("T1")
        assert "T2" in unblocked
        assert table.locks_held_by("T1") == set()

    def test_deadlock_detection(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.EXCLUSIVE)
        table.acquire("T2", "y", LockMode.EXCLUSIVE)
        assert not table.acquire("T1", "y", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockDetected):
            table.acquire("T2", "x", LockMode.EXCLUSIVE)
        assert table.deadlocks_detected == 1

    def test_no_deadlock_detection_when_disabled(self):
        table = LockTable(detect_deadlocks=False)
        table.acquire("T1", "x", LockMode.EXCLUSIVE)
        table.acquire("T2", "y", LockMode.EXCLUSIVE)
        table.acquire("T1", "y", LockMode.EXCLUSIVE)
        assert not table.acquire("T2", "x", LockMode.EXCLUSIVE)

    def test_wait_for_graph(self):
        table = LockTable()
        table.acquire("T1", "x", LockMode.EXCLUSIVE)
        table.acquire("T2", "x", LockMode.EXCLUSIVE)
        graph = table.wait_for_graph()
        assert graph == {"T2": {"T1"}}

    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["T1", "T2", "T3"]),
                st.sampled_from(["x", "y"]),
                st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_exclusive_holders_are_always_sole_holders(self, operations):
        """Property: no object ever has an exclusive holder together with another holder."""
        table = LockTable()
        for transaction_id, key, mode in operations:
            try:
                table.acquire(transaction_id, key, mode)
            except DeadlockDetected:
                table.release_all(transaction_id)
        for key in ("x", "y"):
            holders = table.holders_of(key)
            exclusive = [
                holder for holder in holders if table.holds(holder, key, LockMode.EXCLUSIVE)
            ]
            if exclusive:
                assert len(holders) == 1


class TestUndoRedo:
    def test_eager_apply_and_rollback(self):
        store = MultiVersionStore()
        store.load("x", 1)
        undo = UndoLog(store)
        undo.record_and_apply("T1", "x", 99, index=0)
        assert store.read_latest("x") == 99
        assert undo.has_pending("T1")
        undone = undo.rollback("T1")
        assert undone == 1
        assert store.read_latest("x") == 1
        assert not undo.has_pending("T1")

    def test_forget_after_commit(self):
        store = MultiVersionStore()
        store.load("x", 1)
        undo = UndoLog(store)
        undo.record_and_apply("T1", "x", 2, index=0)
        undo.forget("T1")
        assert undo.rollback("T1") == 0
        assert store.read_latest("x") == 2

    def test_rollback_of_multiple_writes_restores_everything(self):
        store = MultiVersionStore()
        store.load_many({"x": 1, "y": 2})
        undo = UndoLog(store)
        undo.record_and_apply("T1", "x", 10, index=0)
        undo.record_and_apply("T1", "y", 20, index=0)
        undo.rollback("T1")
        assert store.read_latest("x") == 1
        assert store.read_latest("y") == 2

    def test_redo_log_replay_catches_up_a_fresh_store(self):
        redo = RedoLog()
        redo.append_commit("T0", {"x": 1}, index=0)
        redo.append_commit("T1", {"x": 5, "y": 7}, index=1)
        redo.append_commit("T2", {"y": 9}, index=2)
        fresh = MultiVersionStore()
        fresh.load_many({"x": 0, "y": 0})
        replayed = redo.replay_into(fresh, after_index=0)
        assert replayed == 3  # T1 (2 writes) + T2 (1 write)
        assert fresh.read_latest("x") == 5
        assert fresh.read_latest("y") == 9
        assert len(redo) == 4

    def test_records_after_filters_by_index(self):
        redo = RedoLog()
        redo.append_commit("T0", {"x": 1}, index=0)
        redo.append_commit("T5", {"x": 2}, index=5)
        assert [record.index for record in redo.records_after(0)] == [5]


def committed(txn_id, conflict_class, index, writes=(), reads=()):
    return CommittedTransaction(
        transaction_id=txn_id,
        conflict_class=conflict_class,
        global_index=index,
        committed_at=float(index),
        write_keys=tuple(writes),
        read_keys=tuple(reads),
    )


class TestHistoryAndConflictGraph:
    def test_record_and_query_history(self):
        history = SiteHistory("N1")
        history.record_commit(committed("T1", "Cx", 0))
        history.record_commit(committed("T2", "Cy", 1))
        history.record_commit(committed("T3", "Cx", 2))
        assert history.transaction_ids() == ["T1", "T2", "T3"]
        assert history.commit_order_of_class("Cx") == ["T1", "T3"]
        assert history.classes() == ["Cx", "Cy"]
        assert "T2" in history
        assert history.get("T2").global_index == 1
        assert len(history) == 3

    def test_double_commit_rejected(self):
        history = SiteHistory("N1")
        history.record_commit(committed("T1", "Cx", 0))
        with pytest.raises(VerificationError):
            history.record_commit(committed("T1", "Cx", 1))

    def test_same_class_transactions_conflict(self):
        assert transactions_conflict(committed("T1", "Cx", 0), committed("T2", "Cx", 1))

    def test_different_class_no_key_overlap_do_not_conflict(self):
        assert not transactions_conflict(
            committed("T1", "Cx", 0, writes=["a"]), committed("T2", "Cy", 1, writes=["b"])
        )

    def test_write_read_overlap_conflicts(self):
        assert transactions_conflict(
            committed("T1", "Cx", 0, writes=["k"]), committed("T2", "Cy", 1, reads=["k"])
        )

    def test_acyclic_graph_is_serializable(self):
        commits = [committed("T1", "Cx", 0), committed("T2", "Cx", 1), committed("T3", "Cy", 2)]
        assert history_is_serializable(commits)

    def test_cycle_detection(self):
        graph = ConflictGraph()
        graph.add_edge("T1", "T2")
        graph.add_edge("T2", "T3")
        graph.add_edge("T3", "T1")
        cycle = graph.find_cycle()
        assert cycle is not None
        assert not graph.is_acyclic()

    def test_topological_order_respects_edges(self):
        graph = ConflictGraph()
        graph.add_edge("T1", "T2")
        graph.add_edge("T2", "T3")
        graph.add_node("T0")
        order = graph.topological_order()
        assert order.index("T1") < order.index("T2") < order.index("T3")
        assert "T0" in order

    def test_topological_order_rejects_cycles(self):
        graph = ConflictGraph()
        graph.add_edge("T1", "T2")
        graph.add_edge("T2", "T1")
        with pytest.raises(VerificationError):
            graph.topological_order()

    def test_self_loops_ignored(self):
        graph = ConflictGraph()
        graph.add_edge("T1", "T1")
        assert graph.is_acyclic()

    def test_add_history_builds_edges_for_conflicting_pairs_only(self):
        commits = [
            committed("T1", "Cx", 0),
            committed("T2", "Cy", 1),
            committed("T3", "Cx", 2),
        ]
        graph = ConflictGraph()
        graph.add_history(commits)
        assert ("T1", "T3") in graph.edges()
        assert ("T1", "T2") not in graph.edges()
        assert graph.successors("T1") == {"T3"}

    @given(
        class_of=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12)
    )
    @settings(max_examples=50, deadline=None)
    def test_any_single_site_sequential_history_is_serializable(self, class_of):
        """Property: a totally ordered (sequential) history is always serializable."""
        commits = [
            committed(f"T{index}", f"C{class_index}", index)
            for index, class_index in enumerate(class_of)
        ]
        assert history_is_serializable(commits)
