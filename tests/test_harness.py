"""Tests for the experiment harness, result containers and reporting."""

import pytest

from repro.harness import (
    ExperimentResult,
    ascii_plot,
    figure1_spontaneous_order,
    format_mapping,
    format_table,
    overlap_experiment,
    run_experiments,
    run_standard_workload,
)
from repro.core.config import BROADCAST_OPTIMISTIC, ClusterConfig
from repro.workloads import WorkloadSpec


class TestReporting:
    def test_format_table_aligns_columns(self):
        table = format_table(["a", "long_header"], [[1, 2.5], [300, "x"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert "2.500" in lines[2]

    def test_ascii_plot_contains_points(self):
        plot = ascii_plot([(0.0, 0.0), (1.0, 1.0)], width=10, height=5)
        assert plot.count("*") == 2

    def test_ascii_plot_empty(self):
        assert ascii_plot([]) == "(no data)"

    def test_format_mapping(self):
        text = format_mapping({"alpha": 1, "b": 2.5})
        assert "alpha" in text and "2.500" in text


class TestExperimentResult:
    def test_add_row_sets_columns_and_column_access(self):
        result = ExperimentResult(name="demo", description="d")
        result.add_row(x=1, y=2.0)
        result.add_row(x=3, y=4.0)
        assert result.columns == ["x", "y"]
        assert result.column("y") == [2.0, 4.0]

    def test_format_table_and_markdown(self):
        result = ExperimentResult(name="demo", description="desc", parameters={"seed": 1})
        result.add_row(x=1, y=2.0)
        result.notes.append("a note")
        assert "x" in result.format_table()
        markdown = result.to_markdown()
        assert "### demo" in markdown
        assert "| x | y |" in markdown
        assert "- a note" in markdown

    def test_later_rows_extend_columns_instead_of_dropping_keys(self):
        # Regression: columns froze at the first row, so a later row's new
        # keys were silently dropped by format_table/to_markdown.
        result = ExperimentResult(name="demo", description="d")
        result.add_row(x=1)
        result.add_row(x=2, extra="late")
        assert result.columns == ["x", "extra"]
        assert result.column("extra") == [None, "late"]
        table = result.format_table()
        assert "extra" in table and "late" in table
        markdown = result.to_markdown()
        assert "| x | extra |" in markdown
        assert "| 2 | late |" in markdown
        # The backfilled cell of the earlier row renders blank, not "None".
        assert "| 1 |  |" in markdown

    def test_markdown_cells_escape_pipes(self):
        result = ExperimentResult(name="demo", description="d")
        result.add_row(label="a|b")
        markdown = result.to_markdown()
        assert "a\\|b" in markdown
        # The escaped cell still occupies exactly one column.
        row_line = [line for line in markdown.splitlines() if "a\\|b" in line][0]
        assert row_line.count(" | ") == 0  # single-column row: no split


class TestRunStandardWorkload:
    def test_summary_fields_are_consistent(self):
        summary = run_standard_workload(
            ClusterConfig(site_count=3, seed=1, broadcast=BROADCAST_OPTIMISTIC),
            WorkloadSpec(updates_per_site=10, class_count=4, queries_per_site=2),
        )
        assert summary.committed == 30
        assert summary.one_copy_ok
        assert summary.broadcast_ok
        assert summary.mean_client_latency > 0.0
        assert summary.throughput_tps > 0.0
        assert summary.queries_completed == 6
        assert 0.0 <= summary.mismatch_fraction <= 1.0


class TestExperiments:
    def test_figure1_percentages_are_valid_and_trend_upwards(self):
        result = figure1_spontaneous_order(
            intervals_ms=(0.1, 4.0), messages_per_site=60, seed=2
        )
        values = result.column("spontaneously_ordered_pct")
        assert all(0.0 <= value <= 100.0 for value in values)
        assert values[-1] >= values[0]
        assert values[-1] > 90.0

    def test_overlap_experiment_shows_latency_saving(self):
        result = overlap_experiment(execution_times_ms=(2.0,), updates_per_site=10)
        row = result.rows[0]
        assert row["otp_latency_ms"] < row["conservative_latency_ms"]
        assert row["one_copy_ok"]

    def test_run_experiments_selects_by_name(self):
        suite = run_experiments(["figure1"], fast=True)
        assert set(suite.results) == {"figure1"}
        assert "Figure 1" in suite.to_text()
        assert "### Figure 1" in suite.to_markdown()

    def test_run_experiments_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["does-not-exist"])

    def test_run_experiments_empty_selection_runs_nothing(self):
        # Regression: `names or sorted(registry)` treated [] as None and
        # silently ran the entire registry.
        suite = run_experiments([], fast=True)
        assert suite.results == {}
        assert suite.to_text() == ""
        assert suite.to_markdown() == ""

    def test_run_experiments_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate experiment name"):
            run_experiments(["figure1", "figure1"], fast=True)

    def test_run_experiments_preserves_user_given_order(self):
        suite = run_experiments(["overlap", "figure1"], fast=True)
        assert list(suite.results) == ["overlap", "figure1"]
        text = suite.to_text()
        assert text.index("overlap") < text.index("Figure 1")
        assert set(suite.timings) == {"overlap", "figure1"}
        assert all(elapsed >= 0.0 for elapsed in suite.timings.values())
