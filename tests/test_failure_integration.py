"""Failure-injection integration tests for the replicated database.

The paper's correctness argument assumes failure-free runs (Section 4); the
implementation nevertheless keeps working when a non-coordinator site crashes
and recovers, because the transport buffers envelopes for crashed sites and
the reliable broadcast is idempotent.  These tests exercise those paths and
the redo-log-based catch-up substrate.
"""

import pytest

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.core.config import BROADCAST_OPTIMISTIC
from repro.database import MultiVersionStore
from repro.failure import CrashSchedule
from repro.network import LanMulticastLatency
from repro.verification import check_one_copy_serializability


def build_registry():
    registry = ProcedureRegistry()

    @registry.procedure("add", conflict_class=lambda p: f"C{p['slot'] % 3}", duration=0.002)
    def add(ctx, params):
        key = f"slot:{params['slot']}"
        ctx.write(key, ctx.read(key) + 1)

    return registry


def build_cluster(seed=4, site_count=4):
    return ReplicatedDatabase(
        ClusterConfig(
            site_count=site_count,
            seed=seed,
            broadcast=BROADCAST_OPTIMISTIC,
            latency_model=LanMulticastLatency(),
            echo_on_first_receipt=True,
        ),
        build_registry(),
        initial_data={f"slot:{index}": 0 for index in range(6)},
    )


def submit_spread(cluster, count=30, spacing=0.002, sites=None):
    sites = sites or cluster.site_ids()
    for index in range(count):
        site = sites[index % len(sites)]
        cluster.kernel.schedule(
            index * spacing,
            lambda site=site, index=index: cluster.submit(site, "add", {"slot": index % 6}),
        )


class TestCrashRecovery:
    def test_non_coordinator_crash_and_recovery_catches_up(self):
        cluster = build_cluster()
        # Submit only from sites that stay up, so every transaction has a
        # live origin; N4 crashes during the run and recovers later.
        submit_spread(cluster, count=30, sites=["N1", "N2", "N3"])
        cluster.crash_manager.apply_schedule(
            CrashSchedule().crash_for("N4", at=0.010, duration=0.080)
        )
        cluster.run_until_idle()
        counts = cluster.committed_counts()
        assert counts["N1"] == 30
        # The crashed site received all buffered messages after recovery and
        # processed the same transactions.
        assert counts["N4"] == 30
        assert cluster.database_divergence() == {}
        check_one_copy_serializability(cluster.histories()).raise_if_violated()

    def test_crashed_site_does_not_affect_surviving_sites(self):
        cluster = build_cluster(seed=6)
        submit_spread(cluster, count=20, sites=["N1", "N2"])
        cluster.crash_manager.apply_schedule(CrashSchedule().crash("N3", at=0.005))
        cluster.run_until_idle()
        counts = cluster.committed_counts()
        assert counts["N1"] == 20
        assert counts["N2"] == 20
        assert counts["N4"] == 20
        surviving = {site: history for site, history in cluster.histories().items() if site != "N3"}
        check_one_copy_serializability(surviving).raise_if_violated()

    def test_partition_heals_and_replicas_converge(self):
        cluster = build_cluster(seed=8)
        submit_spread(cluster, count=20, sites=["N1", "N2", "N3"])
        cluster.kernel.schedule(0.005, lambda: cluster.transport.partitions.isolate(["N4"]))
        cluster.kernel.schedule(0.080, lambda: cluster.transport.partitions.heal())
        cluster.run_until_idle()
        assert cluster.committed_counts()["N4"] == 20
        assert cluster.database_divergence() == {}

    def test_redo_log_state_transfer_substrate(self):
        """A freshly initialised store can catch up from a peer's redo log."""
        cluster = build_cluster(seed=10)
        submit_spread(cluster, count=12, sites=["N1"])
        cluster.run_until_idle()
        donor = cluster.replica("N1")
        fresh = MultiVersionStore()
        fresh.load_many({f"slot:{index}": 0 for index in range(6)})
        replayed = donor.redo_log.replay_into(fresh, after_index=-1)
        assert replayed > 0
        assert fresh.dump_latest() == donor.database_contents()


class TestMessageLoss:
    def test_lossy_network_still_reaches_agreement(self):
        cluster = ReplicatedDatabase(
            ClusterConfig(
                site_count=3,
                seed=11,
                broadcast=BROADCAST_OPTIMISTIC,
                loss_probability=0.2,
            ),
            build_registry(),
            initial_data={f"slot:{index}": 0 for index in range(6)},
        )
        submit_spread(cluster, count=20)
        cluster.run_until_idle()
        assert set(cluster.committed_counts().values()) == {20}
        assert cluster.database_divergence() == {}
        check_one_copy_serializability(cluster.histories()).raise_if_violated()
