"""Tests for transactions, stored procedures and conflict-class queues."""

import pytest

from repro.database import (
    ClassQueue,
    ConflictClassMap,
    DeliveryState,
    ExecutionState,
    ProcedureRegistry,
    StoredProcedure,
    Transaction,
    TransactionContext,
    TransactionOutcome,
    TransactionRequest,
    next_transaction_id,
)
from repro.database.storage import MultiVersionStore
from repro.errors import (
    ConflictClassError,
    DatabaseError,
    TransactionError,
    UnknownProcedureError,
)
from repro.simulation.randomness import RandomSource


def make_transaction(txn_id="T1", conflict_class="Cx", site="N1"):
    request = TransactionRequest(
        transaction_id=txn_id,
        procedure_name="proc",
        parameters={},
        conflict_class=conflict_class,
        origin_site=site,
        submitted_at=0.0,
    )
    return Transaction(request=request, site_id=site)


class TestTransactionStates:
    def test_initial_state_matches_paper_labels(self):
        transaction = make_transaction()
        assert transaction.execution_state is ExecutionState.ACTIVE
        assert transaction.delivery_state is DeliveryState.PENDING
        assert transaction.state_label() == "T1[a,p]"

    def test_opt_delivery_then_to_delivery(self):
        transaction = make_transaction()
        transaction.mark_opt_delivered(1.0)
        assert transaction.is_pending
        transaction.mark_committable(2.0)
        assert transaction.is_committable
        assert transaction.state_label() == "T1[a,c]"

    def test_double_opt_delivery_rejected(self):
        transaction = make_transaction()
        transaction.mark_opt_delivered(1.0)
        with pytest.raises(TransactionError):
            transaction.mark_opt_delivered(2.0)

    def test_execution_lifecycle(self):
        transaction = make_transaction()
        transaction.mark_opt_delivered(1.0)
        transaction.begin_execution(1.5)
        assert transaction.executing
        assert transaction.execution_attempts == 1
        transaction.complete_execution(2.0, result=42)
        assert transaction.is_executed
        assert transaction.result == 42
        assert transaction.state_label() == "T1[e,p]"

    def test_cannot_complete_without_starting(self):
        transaction = make_transaction()
        with pytest.raises(TransactionError):
            transaction.complete_execution(1.0, result=None)

    def test_cannot_start_twice_concurrently(self):
        transaction = make_transaction()
        transaction.begin_execution(1.0)
        with pytest.raises(TransactionError):
            transaction.begin_execution(1.1)

    def test_commit_requires_executed_and_committable(self):
        transaction = make_transaction()
        transaction.mark_opt_delivered(0.5)
        transaction.begin_execution(1.0)
        transaction.complete_execution(2.0, result=None)
        with pytest.raises(TransactionError):
            transaction.mark_committed(3.0)  # not TO-delivered yet
        transaction.mark_committable(2.5)
        transaction.mark_committed(3.0)
        assert transaction.is_committed
        assert transaction.committed_at == 3.0
        assert transaction.commit_latency == 3.0

    def test_commit_twice_rejected(self):
        transaction = make_transaction()
        transaction.mark_opt_delivered(0.5)
        transaction.begin_execution(1.0)
        transaction.complete_execution(2.0, None)
        transaction.mark_committable(2.5)
        transaction.mark_committed(3.0)
        with pytest.raises(TransactionError):
            transaction.mark_committed(4.0)

    def test_abort_for_reordering_resets_execution(self):
        transaction = make_transaction()
        transaction.mark_opt_delivered(0.5)
        transaction.begin_execution(1.0)
        transaction.complete_execution(2.0, result=7)
        transaction.workspace = {"x": 1}
        transaction.abort_for_reordering()
        assert transaction.execution_state is ExecutionState.ACTIVE
        assert transaction.workspace == {}
        assert transaction.result is None
        assert transaction.reorder_aborts == 1
        assert transaction.outcome is TransactionOutcome.UNDECIDED
        # It can be executed again afterwards.
        transaction.begin_execution(3.0)
        assert transaction.execution_attempts == 2

    def test_aborting_committed_transaction_rejected(self):
        transaction = make_transaction()
        transaction.mark_opt_delivered(0.5)
        transaction.begin_execution(1.0)
        transaction.complete_execution(2.0, None)
        transaction.mark_committable(2.5)
        transaction.mark_committed(3.0)
        with pytest.raises(TransactionError):
            transaction.abort_for_reordering()

    def test_transaction_ids_are_unique(self):
        ids = {next_transaction_id("N1") for _ in range(200)}
        assert len(ids) == 200


class TestTransactionContext:
    def build_store(self):
        store = MultiVersionStore()
        store.load_many({"acct:1": 100, "acct:2": 50})
        return store

    def test_read_your_own_writes(self):
        context = TransactionContext(self.build_store())
        context.write("acct:1", 120)
        assert context.read("acct:1") == 120

    def test_reads_record_read_set(self):
        context = TransactionContext(self.build_store())
        context.read("acct:1")
        context.read_or_default("missing", default=0)
        assert context.read_set == {"acct:1", "missing"}

    def test_read_or_default(self):
        context = TransactionContext(self.build_store())
        assert context.read_or_default("missing", default=7) == 7

    def test_increment(self):
        context = TransactionContext(self.build_store())
        assert context.increment("acct:2", 5) == 55
        assert context.workspace == {"acct:2": 55}

    def test_increment_non_numeric_rejected(self):
        store = self.build_store()
        store.load("name", "alice")
        context = TransactionContext(store)
        with pytest.raises(DatabaseError):
            context.increment("name")

    def test_read_only_context_blocks_writes(self):
        context = TransactionContext(self.build_store(), read_only=True)
        with pytest.raises(DatabaseError):
            context.write("acct:1", 0)

    def test_snapshot_context_reads_bounded_versions(self):
        store = self.build_store()
        store.install("acct:1", 999, created_index=5, created_by="T5")
        context = TransactionContext(store, snapshot_index=2.5)
        assert context.read("acct:1") == 100

    def test_exists(self):
        context = TransactionContext(self.build_store())
        assert context.exists("acct:1")
        assert not context.exists("nope")
        context.write("nope", 1)
        assert context.exists("nope")


class TestStoredProcedures:
    def test_registry_register_and_get(self):
        registry = ProcedureRegistry()
        procedure = StoredProcedure(name="p", body=lambda ctx, params: None, conflict_class="C")
        registry.register(procedure)
        assert registry.get("p") is procedure
        assert "p" in registry
        assert registry.names() == ["p"]
        assert len(registry) == 1

    def test_duplicate_names_rejected(self):
        registry = ProcedureRegistry()
        registry.register(StoredProcedure(name="p", body=lambda c, p: None, conflict_class="C"))
        with pytest.raises(DatabaseError):
            registry.register(
                StoredProcedure(name="p", body=lambda c, p: None, conflict_class="C")
            )

    def test_unknown_procedure_raises(self):
        with pytest.raises(UnknownProcedureError):
            ProcedureRegistry().get("nope")

    def test_decorator_registration(self):
        registry = ProcedureRegistry()

        @registry.procedure("transfer", conflict_class="C_accounts", duration=0.005)
        def transfer(ctx, params):
            return "done"

        procedure = registry.get("transfer")
        assert procedure.conflict_class == "C_accounts"
        assert procedure.body(None, {}) == "done"

    def test_conflict_class_callable_resolution(self):
        procedure = StoredProcedure(
            name="p",
            body=lambda c, p: None,
            conflict_class=lambda params: f"C{params['k']}",
        )
        assert procedure.resolve_conflict_class({"k": 3}) == "C3"

    def test_update_without_class_rejected(self):
        procedure = StoredProcedure(name="p", body=lambda c, p: None, conflict_class=None)
        with pytest.raises(DatabaseError):
            procedure.resolve_conflict_class({})

    def test_query_without_class_gets_query_class(self):
        procedure = StoredProcedure(
            name="q", body=lambda c, p: None, conflict_class=None, is_query=True
        )
        assert procedure.resolve_conflict_class({}) == "__query__"

    def test_duration_constant_and_callable(self):
        stream = RandomSource(1).stream("d")
        constant = StoredProcedure(name="p", body=lambda c, p: None, conflict_class="C", duration=0.01)
        assert constant.sample_duration({}, stream) == pytest.approx(0.01)
        sampled = StoredProcedure(
            name="p2",
            body=lambda c, p: None,
            conflict_class="C",
            duration=lambda params, rng: rng.uniform(0.001, 0.002),
        )
        assert 0.001 <= sampled.sample_duration({}, stream) <= 0.002

    def test_negative_duration_clamped_to_zero(self):
        stream = RandomSource(1).stream("d2")
        procedure = StoredProcedure(
            name="p", body=lambda c, p: None, conflict_class="C", duration=-1.0
        )
        assert procedure.sample_duration({}, stream) == 0.0


class TestConflictClassMap:
    def test_define_and_lookup(self):
        mapping = ConflictClassMap()
        mapping.define("C_accounts", key_prefixes=("acct:",))
        mapping.define("C_orders", key_prefixes=("order:",))
        assert mapping.class_of_key("acct:7") == "C_accounts"
        assert mapping.class_of_key("order:1") == "C_orders"
        assert mapping.class_of_key("other") is None
        assert mapping.class_ids() == ["C_accounts", "C_orders"]
        assert "C_accounts" in mapping
        assert len(mapping) == 2

    def test_duplicate_definition_rejected(self):
        mapping = ConflictClassMap()
        mapping.define("C")
        with pytest.raises(ConflictClassError):
            mapping.define("C")

    def test_unknown_class_rejected(self):
        with pytest.raises(ConflictClassError):
            ConflictClassMap().get("missing")

    def test_key_prefixes_normalised_to_string_tuple(self):
        mapping = ConflictClassMap()
        defined = mapping.define("C_accounts", key_prefixes=["acct:", "iban:"])
        assert defined.key_prefixes == ("acct:", "iban:")
        assert isinstance(defined.key_prefixes, tuple)

    def test_identical_prefix_in_two_classes_rejected(self):
        mapping = ConflictClassMap()
        mapping.define("C_a", key_prefixes=("shared:",))
        with pytest.raises(ConflictClassError):
            mapping.define("C_b", key_prefixes=("shared:",))

    def test_prefix_extending_existing_prefix_rejected(self):
        mapping = ConflictClassMap()
        mapping.define("C_a", key_prefixes=("acct:",))
        # "acct:eu:" keys would belong to both classes.
        with pytest.raises(ConflictClassError):
            mapping.define("C_b", key_prefixes=("acct:eu:",))

    def test_prefix_shadowing_existing_prefix_rejected(self):
        mapping = ConflictClassMap()
        mapping.define("C_a", key_prefixes=("acct:eu:",))
        # "acct:" swallows every key of C_a's partition.
        with pytest.raises(ConflictClassError):
            mapping.define("C_b", key_prefixes=("acct:",))

    def test_rejected_definition_leaves_map_unchanged(self):
        mapping = ConflictClassMap()
        mapping.define("C_a", key_prefixes=("a:",))
        with pytest.raises(ConflictClassError):
            mapping.define("C_b", key_prefixes=("b:", "a:extended"))
        assert "C_b" not in mapping
        assert mapping.class_of_key("b:1") is None

    def test_disjoint_sibling_prefixes_allowed(self):
        mapping = ConflictClassMap()
        mapping.define("C1", key_prefixes=("part1:",))
        # "part10:" is not an extension of "part1:" (the colon disambiguates).
        mapping.define("C10", key_prefixes=("part10:",))
        assert mapping.class_of_key("part1:obj0") == "C1"
        assert mapping.class_of_key("part10:obj0") == "C10"


class TestClassQueue:
    def test_append_and_fifo_order(self):
        queue = ClassQueue("Cx")
        first, second = make_transaction("T1"), make_transaction("T2")
        queue.append(first)
        queue.append(second)
        assert queue.first() is first
        assert len(queue) == 2
        assert queue.position_of(second) == 1
        assert [entry.transaction_id for entry in queue] == ["T1", "T2"]

    def test_wrong_class_rejected(self):
        queue = ClassQueue("Cx")
        other = make_transaction("T1", conflict_class="Cy")
        with pytest.raises(ConflictClassError):
            queue.append(other)

    def test_double_append_rejected(self):
        queue = ClassQueue("Cx")
        transaction = make_transaction("T1")
        queue.append(transaction)
        with pytest.raises(ConflictClassError):
            queue.append(transaction)

    def test_remove_only_head(self):
        queue = ClassQueue("Cx")
        first, second = make_transaction("T1"), make_transaction("T2")
        queue.append(first)
        queue.append(second)
        with pytest.raises(ConflictClassError):
            queue.remove(second)
        queue.remove(first)
        assert queue.first() is second

    def test_find_by_id(self):
        queue = ClassQueue("Cx")
        transaction = make_transaction("T1")
        queue.append(transaction)
        assert queue.find("T1") is transaction
        assert queue.find("T9") is None

    def test_reschedule_moves_committable_before_pending(self):
        """The paper's first CC10 example: T3 confirmed before T2."""
        queue = ClassQueue("Cx")
        t1, t2, t3 = (make_transaction(f"T{i}") for i in (1, 2, 3))
        for transaction in (t1, t2, t3):
            transaction.mark_opt_delivered(0.0)
            queue.append(transaction)
        t1.mark_committable(1.0)
        t3.mark_committable(2.0)
        queue.reschedule_before_pending(t3)
        assert [entry.transaction_id for entry in queue] == ["T1", "T3", "T2"]
        assert queue.committable_before_pending()

    def test_reschedule_to_front_when_all_pending(self):
        """The paper's second example: T3 confirmed while T1, T2 still pending."""
        queue = ClassQueue("Cx")
        t1, t2, t3 = (make_transaction(f"T{i}") for i in (1, 2, 3))
        for transaction in (t1, t2, t3):
            transaction.mark_opt_delivered(0.0)
            queue.append(transaction)
        t3.mark_committable(1.0)
        position = queue.reschedule_before_pending(t3)
        assert position == 0
        assert [entry.transaction_id for entry in queue] == ["T3", "T1", "T2"]

    def test_reschedule_unknown_transaction_rejected(self):
        queue = ClassQueue("Cx")
        with pytest.raises(ConflictClassError):
            queue.reschedule_before_pending(make_transaction("T9"))

    def test_committable_prefix_length(self):
        queue = ClassQueue("Cx")
        t1, t2 = make_transaction("T1"), make_transaction("T2")
        for transaction in (t1, t2):
            transaction.mark_opt_delivered(0.0)
            queue.append(transaction)
        assert queue.committable_prefix_length() == 0
        t1.mark_committable(1.0)
        assert queue.committable_prefix_length() == 1

    def test_snapshot_labels(self):
        queue = ClassQueue("Cx")
        transaction = make_transaction("T1")
        transaction.mark_opt_delivered(0.0)
        queue.append(transaction)
        assert queue.snapshot_labels() == ["T1[a,p]"]

    def test_counters(self):
        queue = ClassQueue("Cx")
        t1 = make_transaction("T1")
        t1.mark_opt_delivered(0.0)
        queue.append(t1)
        queue.remove(t1)
        assert queue.total_appended == 1
        assert queue.total_committed == 1


class TestSnapshotFrontierRegression:
    """Out-of-order commits across conflict classes must never expose a
    non-consecutive committed prefix to queries (regression for the
    consecutive-commit-frontier fix in :class:`SnapshotManager`)."""

    def build_store(self):
        store = MultiVersionStore()
        store.load_many({"a:0": 0, "b:0": 0})
        return store

    def test_frontier_waits_for_gap_to_fill(self):
        from repro.database.snapshots import SnapshotManager

        store = self.build_store()
        manager = SnapshotManager(store)
        # Transaction 1 (class b) finishes before transaction 0 (class a):
        # commits of different classes may complete out of definitive order.
        store.install("b:0", 11, created_index=1, created_by="T1")
        manager.advance(1)
        assert manager.last_processed_index == MultiVersionStore.INITIAL_INDEX
        assert manager.next_query_index() == MultiVersionStore.INITIAL_INDEX + 0.5
        # A query taken now must not see T1's write: index 1 is not part of
        # any gap-free committed prefix yet.
        snapshot = manager.snapshot()
        assert snapshot.read("b:0") == 0
        # Once the gap fills, the frontier jumps over both commits at once.
        store.install("a:0", 7, created_index=0, created_by="T0")
        manager.advance(0)
        assert manager.last_processed_index == 1
        snapshot = manager.snapshot()
        assert snapshot.read("a:0") == 7
        assert snapshot.read("b:0") == 11

    def test_frontier_never_exposes_non_consecutive_prefix(self):
        from repro.database.snapshots import SnapshotManager

        store = self.build_store()
        manager = SnapshotManager(store)
        # Commit definitive indices in a scrambled order; after each step the
        # frontier must equal the length of the gap-free prefix committed so
        # far, never the maximum committed index.
        scrambled = [2, 0, 4, 1, 3]
        committed = set()
        for index in scrambled:
            # Each class commits in order on its own keys; the scramble is
            # across classes, so drive the frontier directly.
            manager.advance(index)
            committed.add(index)
            frontier = manager.last_processed_index
            expected = -1
            while expected + 1 in committed:
                expected += 1
            assert frontier == expected
            # Every index in the exposed prefix has committed.
            assert all(i in committed for i in range(frontier + 1))

    def test_replaying_an_old_index_is_idempotent(self):
        from repro.database.snapshots import SnapshotManager

        store = self.build_store()
        manager = SnapshotManager(store)
        store.install("a:0", 1, created_index=0, created_by="T0")
        manager.advance(0)
        assert manager.last_processed_index == 0
        manager.advance(0)  # recovery replay
        assert manager.last_processed_index == 0
