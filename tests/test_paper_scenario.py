"""End-to-end reproduction of the worked scenario of paper Section 3.2.

Two sites receive six transactions in different tentative orders:

* tentative order at N :  T1 T2 T3 T4 T5 T6
* tentative order at N':  T1 T3 T2 T4 T6 T5
* definitive total order: T1 T2 T3 T4 T5 T6

with conflict classes T1,T2 in Cx, T3,T4 in Cy and T5,T6 in Cz.  At N the
orders match; at N' the T2/T3 swap is harmless (different classes) while the
T6/T5 swap is a real conflict: T6 must be undone and re-executed after T5.
This test drives two independent OTP schedulers directly with exactly those
delivery sequences and checks the paper's conclusions.
"""

import pytest

from repro.core.execution import ExecutionEngine
from repro.core.scheduler import OTPScheduler
from repro.database import (
    MultiVersionStore,
    ProcedureRegistry,
    StoredProcedure,
    Transaction,
    TransactionRequest,
)
from repro.simulation import SimulationKernel
from repro.verification import check_one_copy_serializability
from repro.database.history import CommittedTransaction, SiteHistory

CLASS_OF = {
    "T1": "Cx",
    "T2": "Cx",
    "T3": "Cy",
    "T4": "Cy",
    "T5": "Cz",
    "T6": "Cz",
}

DEFINITIVE_ORDER = ["T1", "T2", "T3", "T4", "T5", "T6"]


class PaperSite:
    """One site of the Section 3.2 scenario, driven by explicit deliveries."""

    def __init__(self, site_id, duration=0.010):
        self.site_id = site_id
        self.kernel = SimulationKernel(seed=0)
        self.store = MultiVersionStore()
        self.store.load_many({f"{cls}:data": 0 for cls in ("Cx", "Cy", "Cz")})
        registry = ProcedureRegistry()
        registry.register(
            StoredProcedure(
                name="work",
                body=lambda ctx, params: ctx.increment(f"{params['cls']}:data"),
                conflict_class=lambda params: params["cls"],
                duration=duration,
            )
        )
        self.engine = ExecutionEngine(self.kernel, self.store, registry, site_id)
        self.commits = []
        self.scheduler = OTPScheduler(
            self.kernel, self.engine, commit_callback=self._commit
        )
        self.history = SiteHistory(site_id)
        self.transactions = {}

    def _commit(self, transaction):
        self.commits.append(transaction.transaction_id)
        for key, value in sorted(transaction.workspace.items()):
            self.store.install(
                key,
                value,
                created_index=transaction.global_index,
                created_by=transaction.transaction_id,
                created_at=self.kernel.now(),
            )
        self.history.record_commit(
            CommittedTransaction(
                transaction_id=transaction.transaction_id,
                conflict_class=transaction.conflict_class,
                global_index=transaction.global_index,
                committed_at=self.kernel.now(),
                write_keys=tuple(sorted(transaction.workspace)),
            )
        )

    def opt_deliver(self, txn_id):
        request = TransactionRequest(
            transaction_id=txn_id,
            procedure_name="work",
            parameters={"cls": CLASS_OF[txn_id]},
            conflict_class=CLASS_OF[txn_id],
            origin_site="client",
            submitted_at=self.kernel.now(),
        )
        transaction = Transaction(request=request, site_id=self.site_id)
        self.transactions[txn_id] = transaction
        self.scheduler.on_opt_deliver(transaction)

    def to_deliver(self, txn_id, position):
        self.scheduler.on_to_deliver(txn_id, position)

    def queue_ids(self, class_id):
        return [entry.transaction_id for entry in self.scheduler.queue_for(class_id)]


def run_scenario(duration=0.010, settle_between=False):
    site_n = PaperSite("N", duration=duration)
    site_n_prime = PaperSite("N'", duration=duration)

    for txn_id in ["T1", "T2", "T3", "T4", "T5", "T6"]:
        site_n.opt_deliver(txn_id)
    for txn_id in ["T1", "T3", "T2", "T4", "T6", "T5"]:
        site_n_prime.opt_deliver(txn_id)

    if settle_between:
        site_n.kernel.run_until_idle()
        site_n_prime.kernel.run_until_idle()

    for position, txn_id in enumerate(DEFINITIVE_ORDER):
        site_n.to_deliver(txn_id, position)
        site_n_prime.to_deliver(txn_id, position)
    site_n.kernel.run_until_idle()
    site_n_prime.kernel.run_until_idle()
    return site_n, site_n_prime


class TestPaperScenario:
    def test_initial_queue_contents_match_the_paper(self):
        site_n = PaperSite("N")
        site_n_prime = PaperSite("N'")
        for txn_id in ["T1", "T2", "T3", "T4", "T5", "T6"]:
            site_n.opt_deliver(txn_id)
        for txn_id in ["T1", "T3", "T2", "T4", "T6", "T5"]:
            site_n_prime.opt_deliver(txn_id)
        assert site_n.queue_ids("Cx") == ["T1", "T2"]
        assert site_n.queue_ids("Cy") == ["T3", "T4"]
        assert site_n.queue_ids("Cz") == ["T5", "T6"]
        assert site_n_prime.queue_ids("Cz") == ["T6", "T5"]

    def test_site_with_matching_tentative_order_never_aborts(self):
        site_n, _ = run_scenario()
        assert all(t.reorder_aborts == 0 for t in site_n.transactions.values())

    def test_site_with_conflicting_mismatch_aborts_exactly_t6(self):
        _, site_n_prime = run_scenario()
        aborted = {
            txn_id
            for txn_id, transaction in site_n_prime.transactions.items()
            if transaction.reorder_aborts > 0
        }
        assert aborted == {"T6"}

    def test_non_conflicting_mismatch_t2_t3_costs_nothing(self):
        _, site_n_prime = run_scenario()
        assert site_n_prime.transactions["T2"].reorder_aborts == 0
        assert site_n_prime.transactions["T3"].reorder_aborts == 0

    def test_conflicting_transactions_commit_in_definitive_order_at_both_sites(self):
        site_n, site_n_prime = run_scenario()
        for site in (site_n, site_n_prime):
            for class_id in ("Cx", "Cy", "Cz"):
                class_commits = [t for t in site.commits if CLASS_OF[t] == class_id]
                expected = [t for t in DEFINITIVE_ORDER if CLASS_OF[t] == class_id]
                assert class_commits == expected

    def test_all_transactions_commit_at_both_sites(self):
        site_n, site_n_prime = run_scenario()
        assert set(site_n.commits) == set(DEFINITIVE_ORDER)
        assert set(site_n_prime.commits) == set(DEFINITIVE_ORDER)

    def test_one_copy_serializability_of_the_scenario(self):
        site_n, site_n_prime = run_scenario()
        report = check_one_copy_serializability(
            {"N": site_n.history, "N'": site_n_prime.history},
            definitive_order=DEFINITIVE_ORDER,
        )
        report.raise_if_violated()

    def test_scenario_with_executions_finishing_before_confirmation(self):
        """Same scenario but executions complete before any TO-delivery, so the
        mis-ordered T6 at N' is already fully executed when it must be undone."""
        site_n, site_n_prime = run_scenario(duration=0.001, settle_between=True)
        assert site_n_prime.transactions["T6"].reorder_aborts == 1
        assert site_n_prime.transactions["T6"].execution_attempts == 2
        report = check_one_copy_serializability(
            {"N": site_n.history, "N'": site_n_prime.history},
            definitive_order=DEFINITIVE_ORDER,
        )
        report.raise_if_violated()

    def test_replica_contents_identical_after_scenario(self):
        site_n, site_n_prime = run_scenario()
        assert site_n.store.dump_latest() == site_n_prime.store.dump_latest()
        assert site_n.store.dump_latest() == {
            "Cx:data": 2,
            "Cy:data": 2,
            "Cz:data": 2,
        }
