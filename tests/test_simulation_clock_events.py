"""Unit tests for the virtual clock and the event queue."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.simulation.clock import (
    VirtualClock,
    microseconds,
    milliseconds,
    to_milliseconds,
)
from repro.simulation.events import EventQueue


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advances_forward(self):
        clock = VirtualClock()
        clock.advance_to(2.5)
        assert clock.now() == 2.5

    def test_advance_to_same_time_is_allowed(self):
        clock = VirtualClock(1.0)
        clock.advance_to(1.0)
        assert clock.now() == 1.0

    def test_cannot_move_backwards(self):
        clock = VirtualClock(3.0)
        with pytest.raises(ClockError):
            clock.advance_to(2.0)


class TestUnitHelpers:
    def test_milliseconds(self):
        assert milliseconds(4.0) == pytest.approx(0.004)

    def test_microseconds(self):
        assert microseconds(250.0) == pytest.approx(0.00025)

    def test_to_milliseconds_roundtrip(self):
        assert to_milliseconds(milliseconds(7.5)) == pytest.approx(7.5)


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        first = queue.pop()
        second = queue.pop()
        assert first.time == 1.0
        assert second.time == 2.0

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, label="a")
        queue.push(1.0, lambda: None, label="b")
        assert queue.pop().label == "a"
        assert queue.pop().label == "b"

    def test_priority_orders_before_sequence(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=1, label="low")
        queue.push(1.0, lambda: None, priority=0, label="high")
        assert queue.pop().label == "high"

    def test_len_counts_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(event)
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="cancelled")
        queue.push(2.0, lambda: None, label="kept")
        queue.cancel(event)
        assert queue.pop().label == "kept"

    def test_double_cancel_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_cancel_after_pop_is_a_noop(self):
        # A holder may keep an event handle past its execution (e.g. a flush
        # timer cancelling itself from its own callback); cancelling a fired
        # event must not drive the live count negative.
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        queue.cancel(event)
        assert len(queue) == 1
        assert queue.pop() is not None
        queue.cancel(event)
        assert len(queue) == 0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 3.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_rejects_non_callable(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.push(1.0, "not callable")

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue
