#!/usr/bin/env python
"""Docs site checker: internal links resolve, fenced examples doctest clean.

Run from the repository root (the package must be importable, e.g.
``PYTHONPATH=src python tools/check_docs.py``).  Two checks:

* every relative markdown link in ``README.md`` and ``docs/*.md`` points at
  an existing file;
* every ``>>>`` example in ``docs/*.md`` passes under :mod:`doctest`
  (``python -m doctest`` semantics — the examples are real, deterministic
  runs of the library).

Exit status 0 when clean; each failure is printed on its own line.  The CI
docs job and ``tests/test_docs.py`` both run this module, so a broken link
or a stale example fails fast in both places.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links, excluding pure in-page anchors ("#...").
_LINK = re.compile(r"\[[^\]]*\]\(([^)#][^)]*)\)")


def doc_files() -> List[Path]:
    """The documentation files covered by the checks."""
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def check_links() -> List[str]:
    """Return one message per broken relative link."""
    failures: List[str] = []
    for doc in doc_files():
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if path and not (doc.parent / path).exists():
                failures.append(
                    f"{doc.relative_to(ROOT)}: broken link -> {target}"
                )
    return failures


def run_doctests() -> List[str]:
    """Return one message per docs page with failing doctests."""
    failures: List[str] = []
    for doc in sorted((ROOT / "docs").glob("*.md")):
        result = doctest.testfile(str(doc), module_relative=False, verbose=False)
        if result.failed:
            failures.append(
                f"{doc.relative_to(ROOT)}: {result.failed} of "
                f"{result.attempted} doctest example(s) failed"
            )
    return failures


def main(argv: List[str] = ()) -> int:
    # --links-only lets CI split link checking from the doctest pass (which
    # it runs via `python -m doctest docs/*.md`) without executing every
    # example twice.
    links_only = "--links-only" in argv
    failures = check_links()
    if not links_only:
        failures += run_doctests()
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        return 1
    checked = "links" if links_only else "links and doctests"
    print(f"docs OK: {len(doc_files())} files, {checked} clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
