"""Determinism & isolation lint CLI.

Usage::

    python -m tools.lint [paths ...] [--format text|json] [--baseline FILE]
                         [--write-baseline FILE] [--report-only]
                         [--record-db DB --record-name NAME] [--list-rules]

Exit-code contract (stable; CI and the driver rely on it):

* ``0`` — no findings (or ``--report-only``/``--write-baseline`` ran).
* ``1`` — findings present.
* ``2`` — engine/usage error (unparsable file, missing path, bad baseline).

``--report-only`` prints/records findings but always exits 0 — used over
``tests/`` to make determinism debt visible without gating.  With
``--record-db`` the findings count per rule is recorded into the
observability results store, so the trend report
(``python -m repro.observability.trend``) files it next to the perf
trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import LintEngine, LintReport, default_rules
from repro.analysis.baseline import filter_baselined, load_baseline, write_baseline

JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    for error in report.errors:
        lines.append(f"error: {error}")
    for finding in report.findings:
        lines.append(finding.render())
    counts = report.counts_by_rule()
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s)"
        f" ({len(report.suppressed)} suppressed"
        + (f", {report.baselined} baselined" if report.baselined else "")
        + ")"
    )
    if counts:
        summary += ": " + ", ".join(f"{rule}={count}" for rule, count in counts.items())
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport, rule_names: List[str]) -> str:
    body = {
        "version": JSON_SCHEMA_VERSION,
        "rules": rule_names,
        "files_scanned": report.files_scanned,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": len(report.suppressed),
        "baselined": report.baselined,
        "counts_by_rule": report.counts_by_rule(),
        "errors": list(report.errors),
        "exit_code": report.exit_code,
    }
    return json.dumps(body, indent=2, sort_keys=True)


def record_report(report: LintReport, *, db_path: str, name: str, paths: List[str]) -> None:
    """File the findings count in the results store (trend report input)."""
    from repro.observability.store import ResultsStore

    metrics = {"findings_total": float(len(report.findings))}
    for rule, count in report.counts_by_rule().items():
        metrics[f"findings_{rule.replace('-', '_')}"] = float(count)
    metrics["files_scanned"] = float(report.files_scanned)
    metrics["suppressed"] = float(len(report.suppressed))
    store = ResultsStore(db_path)
    try:
        record = store.record_run(
            name,
            config={"paths": sorted(paths), "tool": "tools.lint"},
            metrics=metrics,
        )
        store.write_artifact(record, directory=str(Path(db_path).parent))
    finally:
        store.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="AST lint for the repo's determinism & isolation invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument("--baseline", help="baseline JSON to filter known findings")
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="always exit 0 (non-gating debt report)",
    )
    parser.add_argument(
        "--record-db", help="record the findings count into this results store"
    )
    parser.add_argument(
        "--record-name",
        default="lint_debt",
        help="run name used with --record-db (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule pack and exit"
    )
    options = parser.parse_args(argv)

    rules = default_rules()
    if options.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    engine = LintEngine(rules)
    report = engine.lint_paths([Path(p) for p in options.paths])

    if options.baseline:
        try:
            baseline = load_baseline(options.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 2
        report.findings, report.baselined = filter_baselined(
            report.findings, baseline
        )

    if options.write_baseline:
        count = write_baseline(report.findings, options.write_baseline)
        print(f"baseline: recorded {count} finding(s) -> {options.write_baseline}")
        return 0

    if options.format == "json":
        print(render_json(report, engine.rule_names))
    else:
        print(render_text(report))

    if options.record_db:
        record_report(
            report,
            db_path=options.record_db,
            name=options.record_name,
            paths=list(options.paths),
        )

    if report.errors:
        return 2
    if options.report_only:
        return 0
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
