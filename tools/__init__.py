"""Developer tools runnable as modules (``python -m tools.lint``).

The package keeps ``src`` on ``sys.path`` so the tools work from a plain
checkout without installation, matching the pytest ``pythonpath`` setting.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
