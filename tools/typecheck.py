"""Strict type-check gate over the typed core.

Runs mypy (configured via ``[tool.mypy]`` in ``pyproject.toml``) over the
packages that form the deterministic heart of the reproduction:
``repro.simulation``, ``repro.broadcast``, ``repro.core`` and
``repro.failure``.  The per-module overrides in ``pyproject.toml`` apply the
strict flag set to exactly those packages, so this wrapper only needs to point
mypy at the right trees.

mypy is an optional tool dependency (the ``test`` extra).  In environments
where it is not installed the gate exits 0 with a notice rather than failing —
CI installs mypy explicitly, so the gate is enforced where it matters.

Usage::

    python -m tools.typecheck            # check the typed core
    python -m tools.typecheck --verbose  # echo the mypy invocation

Exit codes: 0 = clean (or mypy unavailable), 1 = type errors, 2 = usage or
engine error.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages held to the strict flag set (mirrors the pyproject overrides).
TYPED_CORE = (
    "src/repro/simulation",
    "src/repro/broadcast",
    "src/repro/core",
    "src/repro/failure",
)


def mypy_available() -> bool:
    """Whether mypy is importable in this interpreter."""
    return importlib.util.find_spec("mypy") is not None


def run_typecheck(*, verbose: bool = False) -> int:
    """Run mypy over the typed core; returns a process-style exit code."""
    if not mypy_available():
        print(
            "typecheck: mypy is not installed; skipping the typed-core gate "
            "(install the `test` extra to enable it)."
        )
        return 0
    targets = [str(REPO_ROOT / rel) for rel in TYPED_CORE]
    command: List[str] = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO_ROOT / "pyproject.toml"),
        *targets,
    ]
    if verbose:
        print("typecheck: " + " ".join(command))
    completed = subprocess.run(command, cwd=str(REPO_ROOT))
    return completed.returncode


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.typecheck",
        description="Strict mypy gate over the typed core packages.",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="echo the underlying mypy invocation",
    )
    options = parser.parse_args(argv)
    return run_typecheck(verbose=options.verbose)


if __name__ == "__main__":
    sys.exit(main())
