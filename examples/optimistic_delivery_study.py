"""Study of optimistic delivery: Figure 1, the optimism trade-off and lazy
replication, reproduced on the simulated network.

Run with::

    python examples/optimistic_delivery_study.py

The script regenerates the paper's Figure 1 (probability of spontaneous total
order vs. the interval between broadcasts), shows how the tentative/definitive
mismatch rate and the resulting reordering aborts grow when the network gets
noisier, and compares OTP against asynchronous (lazy) replication on the same
workload — the three quantitative arguments of the paper.
"""

from repro.harness import (
    ascii_plot,
    figure1_spontaneous_order,
    lazy_comparison_experiment,
    optimism_tradeoff_experiment,
)


def main() -> None:
    print("Reproducing Figure 1: spontaneous total order on a simulated LAN")
    figure1 = figure1_spontaneous_order(
        intervals_ms=(0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0), messages_per_site=150
    )
    print(figure1.format_table())
    points = [
        (row["interval_ms"], row["spontaneously_ordered_pct"]) for row in figure1.rows
    ]
    print()
    print(ascii_plot(points, x_label="interval (ms)", y_label="% ordered"))
    print()

    print("Optimism trade-off: what happens when spontaneous order degrades")
    tradeoff = optimism_tradeoff_experiment(
        receiver_jitter_us=(30.0, 400.0, 3000.0), updates_per_site=25
    )
    print(tradeoff.format_table())
    print()

    print("OTP vs. asynchronous (lazy) replication on the same workload")
    lazy = lazy_comparison_experiment(updates_per_site=40)
    print(lazy.format_table())
    print()
    for note in lazy.notes:
        print(f"note: {note}")


if __name__ == "__main__":
    main()
