"""Quickstart: a 4-site replicated database over optimistic atomic broadcast.

Run with::

    python examples/quickstart.py

The example registers two stored procedures (an update transaction and a
read-only query), builds a 4-site cluster, submits a handful of transactions
from different sites and shows that every replica converges to the same
state while clients observe millisecond-level commit latencies.
"""

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase


def build_registry() -> ProcedureRegistry:
    """Register the application's stored procedures (paper Section 2.2)."""
    registry = ProcedureRegistry()

    # An update transaction: all invocations touching the same account class
    # belong to one conflict class and are serialised by the class queue.
    @registry.procedure("deposit", conflict_class="C_accounts", duration=0.002)
    def deposit(ctx, params):
        account = params["account"]
        balance = ctx.read(account)
        ctx.write(account, balance + params["amount"])
        return balance + params["amount"]

    # A read-only query: executed locally on a consistent snapshot, never
    # broadcast, never delays update transactions (paper Section 5).
    @registry.procedure("total_balance", is_query=True, duration=0.001)
    def total_balance(ctx, params):
        return sum(ctx.read(account) for account in params["accounts"])

    return registry


def main() -> None:
    accounts = {f"account:{name}": 100 for name in ("alice", "bob", "carol")}
    cluster = ReplicatedDatabase(
        ClusterConfig(site_count=4, seed=42),
        build_registry(),
        initial_data=accounts,
    )

    # Clients connected to different sites submit update transactions; each
    # request is TO-broadcast, executed optimistically at every replica and
    # committed once the definitive total order confirms the tentative one.
    cluster.submit("N1", "deposit", {"account": "account:alice", "amount": 25})
    cluster.submit("N2", "deposit", {"account": "account:bob", "amount": 50})
    cluster.submit("N3", "deposit", {"account": "account:alice", "amount": -10})
    query = cluster.submit_query("N4", "total_balance", {"accounts": sorted(accounts)})

    cluster.run_until_idle()

    print("Database contents at every replica:")
    for site in cluster.site_ids():
        print(f"  {site}: {cluster.replica(site).database_contents()}")

    print(f"\nSnapshot query at N4 returned: {query.result}")

    latencies = cluster.all_client_latencies()
    print(f"\nCommitted update transactions : {cluster.committed_counts()['N1']}")
    print(f"Mean client commit latency    : {1000 * sum(latencies) / len(latencies):.2f} ms")
    print(f"Reordering aborts (CC8)       : {cluster.total_reorder_aborts()}")
    print(f"Replica divergence            : {cluster.database_divergence() or 'none'}")


if __name__ == "__main__":
    main()
