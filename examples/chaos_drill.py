"""Chaos drill: inject faults into a sharded cluster and verify everything.

Runs two scenarios from the chaos library — a sequencer failover under load
and a whole-shard outage — and prints the injected-fault trace next to the
verification verdicts.  The point of the exercise: the paper's correctness
properties (1-copy-serializability, consistent snapshot queries) and the
liveness property (every submitted transaction eventually terminates) hold
*through* the faults the system model admits, not just on sunny days.

Run with:  PYTHONPATH=src python examples/chaos_drill.py
"""

from repro.chaos import run_chaos_scenario


def print_run(result) -> None:
    print(f"scenario : {result.scenario} (seed {result.seed})")
    print(f"  fault trace ({result.faults_injected} injected, {len(result.trace)} events):")
    for fault in result.trace:
        sites = ", ".join(fault.sites) if fault.sites else "-"
        print(f"    t={fault.time * 1000.0:7.2f} ms  {fault.action:<9} {fault.target:<24} -> {sites}")
    print(f"  committed                  : {result.committed}/{result.submitted_updates}")
    print(f"  per-shard 1SR              : {result.one_copy_ok}")
    print(f"  query snapshot consistency : {result.queries_consistent}")
    print(f"  eventual termination       : {result.liveness_ok}")
    print()


def main() -> None:
    for scenario in ("sequencer_failover_under_load", "whole_shard_outage"):
        result = run_chaos_scenario(scenario, seed=7)
        result.raise_if_violated()
        print_run(result)
    print("every property held through every injected fault")


if __name__ == "__main__":
    main()
