"""Failure injection: crashes, coordinator failover and recovery catch-up.

Run with::

    python examples/failure_and_recovery.py

The paper assumes a crash-stop model with recovery (Section 2).  This example
runs a continuous update stream over four replicas while injecting failures:

1. a non-coordinator replica crashes — its volatile state (in-flight
   transactions, delivery queues, workspaces) dies with the process and
   clients fail over to a live replica; on recovery it catches up from a
   peer's redo log (state transfer) and converges to the same state;
2. the coordinator (the site establishing the definitive total order) crashes
   — the lowest surviving site takes over and transaction processing
   continues;
3. throughout, 1-copy-serializability and replica convergence are checked.
"""

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.failure import CrashSchedule
from repro.metrics import summarize
from repro.verification import check_one_copy_serializability

SLOTS = 8
PHASE_TXNS = 40


def build_registry() -> ProcedureRegistry:
    registry = ProcedureRegistry()

    @registry.procedure("add", conflict_class=lambda p: f"C{p['slot'] % 4}", duration=0.002)
    def add(ctx, params):
        key = f"slot:{params['slot']}"
        ctx.write(key, ctx.read(key) + 1)
        return key

    return registry


def main() -> None:
    cluster = ReplicatedDatabase(
        ClusterConfig(site_count=4, seed=23, echo_on_first_receipt=True),
        build_registry(),
        initial_data={f"slot:{index}": 0 for index in range(SLOTS)},
    )

    healthy_sites = ["N2", "N3", "N4"]
    failovers = {"count": 0}

    def submit_with_failover(site: str, slot: int) -> None:
        # A crashed site refuses submissions; the client retries at the next
        # live replica (real-world connection failover).
        candidates = [site] + [other for other in healthy_sites if other != site]
        for candidate in candidates:
            if cluster.crash_manager.is_up(candidate):
                if candidate != site:
                    failovers["count"] += 1
                cluster.submit(candidate, "add", {"slot": slot})
                return

    def submit_phase(start: float, count: int) -> None:
        for index in range(count):
            cluster.kernel.schedule_at(
                start + index * 0.003,
                lambda site=healthy_sites[index % 3], index=index: submit_with_failover(
                    site, index % SLOTS
                ),
            )

    # Phase 1: normal operation.
    submit_phase(start=0.0, count=PHASE_TXNS)
    # N3 crashes mid-phase-1 and recovers during phase 2.
    # N1 (the initial coordinator) crashes for good before phase 2.
    cluster.crash_manager.apply_schedule(
        CrashSchedule()
        .crash_for("N3", at=0.030, duration=0.300)
        .crash("N1", at=0.200)
    )
    # Phase 2: submitted after the coordinator crashed.
    submit_phase(start=0.250, count=PHASE_TXNS)
    cluster.run_until_idle()

    total = 2 * PHASE_TXNS
    print("Failure and recovery demo (4 replicas, 2 injected failures)")
    print(f"  coordinator after failover    : {cluster.coordinator_site()} (was N1)")
    print(f"  crash count of N3             : {cluster.crash_manager.crash_count('N3')}")
    for site in ("N2", "N3", "N4"):
        replica = cluster.replica(site)
        print(f"  commits at {site}                : {replica.committed_count()} / {total}")

    surviving_histories = {
        site: cluster.replica(site).history for site in ("N2", "N3", "N4")
    }
    report = check_one_copy_serializability(surviving_histories)
    contents = {site: cluster.replica(site).database_contents() for site in ("N2", "N3", "N4")}
    identical = contents["N2"] == contents["N3"] == contents["N4"]
    latencies = summarize(cluster.all_client_latencies())

    print(f"  client failovers to live sites: {failovers['count']}")
    print(
        "  redo commits transferred to N3: "
        f"{cluster.replica('N3').metrics.count('state_transfer_commits')}"
    )
    print(f"  1-copy-serializable           : {report.ok}")
    print(f"  surviving replicas identical  : {identical}")
    print(f"  recovered N3 caught up        : {cluster.replica('N3').committed_count() == total}")
    print(f"  mean commit latency           : {latencies.mean * 1000:.2f} ms over {latencies.count} txns")
    print(f"  total slot increments applied : {sum(contents['N2'].values())} (expected {total})")


if __name__ == "__main__":
    main()
