"""Replicated banking workload: OTP vs. conservative processing.

Run with::

    python examples/banking_replication.py

A bank with several branches is fully replicated over four sites.  Each
branch is one conflict class; transfers within a branch conflict and are
serialised, transfers of different branches run concurrently.  The example
drives the same randomised workload through the optimistic (OTP) cluster and
through a conservative cluster that only starts executing after the
definitive order is known, and reports the latency difference, the number of
reordering aborts and the invariant checks (money conservation, replica
convergence, 1-copy-serializability).
"""

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.core.config import BROADCAST_CONSERVATIVE, BROADCAST_OPTIMISTIC
from repro.metrics import summarize
from repro.verification import check_one_copy_serializability

BRANCHES = 4
ACCOUNTS_PER_BRANCH = 8
INITIAL_BALANCE = 1_000
TRANSFERS = 120


def build_registry() -> ProcedureRegistry:
    registry = ProcedureRegistry()

    @registry.procedure(
        "transfer",
        conflict_class=lambda params: f"C_branch{params['branch']}",
        duration=0.003,
    )
    def transfer(ctx, params):
        source = f"branch{params['branch']}:acct{params['source']}"
        target = f"branch{params['branch']}:acct{params['target']}"
        amount = params["amount"]
        source_balance = ctx.read(source)
        ctx.write(source, source_balance - amount)
        ctx.write(target, ctx.read(target) + amount)
        return amount

    @registry.procedure("branch_audit", is_query=True, duration=0.002)
    def branch_audit(ctx, params):
        branch = params["branch"]
        return sum(
            ctx.read(f"branch{branch}:acct{account}") for account in range(ACCOUNTS_PER_BRANCH)
        )

    return registry


def initial_data():
    return {
        f"branch{branch}:acct{account}": INITIAL_BALANCE
        for branch in range(BRANCHES)
        for account in range(ACCOUNTS_PER_BRANCH)
    }


def drive_workload(cluster) -> None:
    """Schedule the same randomised transfer stream on any cluster."""
    sites = cluster.site_ids()
    stream = cluster.kernel.random.stream("bank.workload")
    submit_at = 0.0
    for index in range(TRANSFERS):
        submit_at += stream.exponential(0.002)
        site = sites[index % len(sites)]
        branch = stream.randint(0, BRANCHES - 1)
        source = stream.randint(0, ACCOUNTS_PER_BRANCH - 1)
        target = (source + stream.randint(1, ACCOUNTS_PER_BRANCH - 1)) % ACCOUNTS_PER_BRANCH
        cluster.kernel.schedule_at(
            submit_at,
            lambda site=site, branch=branch, source=source, target=target: cluster.submit(
                site,
                "transfer",
                {"branch": branch, "source": source, "target": target, "amount": 10},
            ),
        )


def run(broadcast: str):
    cluster = ReplicatedDatabase(
        ClusterConfig(site_count=4, seed=7, broadcast=broadcast),
        build_registry(),
        initial_data=initial_data(),
    )
    drive_workload(cluster)
    cluster.run_until_idle()
    return cluster


def main() -> None:
    optimistic = run(BROADCAST_OPTIMISTIC)
    conservative = run(BROADCAST_CONSERVATIVE)

    expected_total = BRANCHES * ACCOUNTS_PER_BRANCH * INITIAL_BALANCE
    for name, cluster in (("OTP (optimistic)", optimistic), ("conservative", conservative)):
        latencies = summarize(cluster.all_client_latencies())
        totals = {
            site: sum(cluster.replica(site).database_contents().values())
            for site in cluster.site_ids()
        }
        report = check_one_copy_serializability(cluster.histories())
        print(f"=== {name} ===")
        print(f"  committed transfers        : {cluster.committed_counts()['N1']}")
        print(f"  mean / p90 commit latency  : {latencies.mean * 1000:.2f} ms / {latencies.p90 * 1000:.2f} ms")
        print(f"  reordering aborts (CC8)    : {cluster.total_reorder_aborts()}")
        print(f"  money conserved everywhere : {all(total == expected_total for total in totals.values())}")
        print(f"  replicas identical         : {cluster.database_divergence() == {}}")
        print(f"  1-copy-serializable        : {report.ok}")
        print()

    audit = optimistic.submit_query("N2", "branch_audit", {"branch": 0})
    optimistic.run_until_idle()
    print(f"Snapshot audit of branch 0 at N2: {audit.result} "
          f"(expected {ACCOUNTS_PER_BRANCH * INITIAL_BALANCE})")

    saving = (
        sum(conservative.all_client_latencies()) / TRANSFERS
        - sum(optimistic.all_client_latencies()) / TRANSFERS
    )
    print(f"\nMean latency saved by overlapping ordering with execution: {saving * 1000:.2f} ms/txn")


if __name__ == "__main__":
    main()
