"""Sharded scale-out: per-shard broadcast groups with cross-shard queries.

Run with::

    PYTHONPATH=src python examples/sharded_scaleout.py

The paper partitions the database into disjoint conflict classes whose
update transactions never conflict.  This example shards those classes over
independent atomic-broadcast groups — one sequencer per shard instead of one
global sequencer — and shows that, at fixed per-shard load, the aggregate
committed-update throughput grows with the shard count while queries that
span shards still read consistent merged snapshots.
"""

from repro.core.config import ShardingConfig
from repro.harness import run_sharded_workload
from repro.workloads import ShardedWorkloadSpec


def run_sweep() -> None:
    print("Sharded scale-out: fixed per-shard load, growing shard count")
    print("(each shard: 2 conflict classes, 3 replicas, 40 update txns; "
          "queries span 3 classes and hence shard boundaries)")
    print()
    header = (
        f"{'shards':>6}  {'committed':>9}  {'throughput tps':>14}  "
        f"{'latency ms':>10}  {'1SR/shard':>9}  {'queries ok':>10}"
    )
    print(header)
    print("-" * len(header))
    baseline = None
    for shard_count in (1, 2, 4, 8):
        spec = ShardedWorkloadSpec(
            shard_count=shard_count,
            classes_per_shard=2,
            updates_per_shard=40,
            update_interval=0.004,
            queries=10,
            query_span=3,
            update_duration=0.002,
        )
        summary = run_sharded_workload(
            ShardingConfig(shard_count=shard_count, sites_per_shard=3, seed=23),
            spec,
        )
        if baseline is None:
            baseline = summary.aggregate_throughput_tps
        print(
            f"{shard_count:>6}  {summary.total_committed:>9}  "
            f"{summary.aggregate_throughput_tps:>14.1f}  "
            f"{summary.mean_client_latency * 1000.0:>10.2f}  "
            f"{str(summary.one_copy_ok):>9}  {str(summary.queries_consistent):>10}"
        )
    print()
    print("Sharding removes the global sequencer: every shard's broadcast")
    print("group orders only its own classes, so throughput scales with the")
    print("shard count and per-transaction latency stays flat.  Multi-class")
    print("queries are fanned out by the router and merged from one")
    print("consistent snapshot per shard (verified above).")


if __name__ == "__main__":
    run_sweep()
