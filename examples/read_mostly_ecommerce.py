"""Read-mostly e-commerce workload: snapshot queries next to an update stream.

Run with::

    python examples/read_mostly_ecommerce.py

The paper's Section 5 argues that the common deployment is a read-mostly
system: queries are executed locally on consistent snapshots while update
transactions are broadcast and applied everywhere.  This example models a
small shop — a product catalogue partitioned into conflict classes per
category, orders that decrement stock, and dashboard queries that scan
several categories — and demonstrates:

* queries never block or get blocked by the update stream;
* every query sees a consistent snapshot (stock never appears negative and
  totals always match an actual database state);
* update commit latency is unaffected by the query load.
"""

from repro import ClusterConfig, ProcedureRegistry, ReplicatedDatabase
from repro.metrics import summarize

CATEGORIES = 5
PRODUCTS_PER_CATEGORY = 10
INITIAL_STOCK = 50
ORDERS = 150
DASHBOARD_QUERIES = 60


def product_key(category: int, product: int) -> str:
    return f"cat{category}:product{product}"


def build_registry() -> ProcedureRegistry:
    registry = ProcedureRegistry()

    @registry.procedure(
        "place_order",
        conflict_class=lambda params: f"C_cat{params['category']}",
        duration=0.002,
    )
    def place_order(ctx, params):
        key = product_key(params["category"], params["product"])
        stock = ctx.read(key)
        if stock <= 0:
            # Out of stock: the transaction still commits but buys nothing
            # (stored procedures encapsulate the whole interaction).
            ctx.write(key, stock)
            return 0
        ctx.write(key, stock - 1)
        # Order counters live inside the category's own partition: different
        # conflict classes must update disjoint data (paper Section 2.3).
        ctx.increment(f"cat{params['category']}:orders", 1)
        return 1

    @registry.procedure("stock_dashboard", is_query=True, duration=0.004)
    def stock_dashboard(ctx, params):
        total = 0
        for category in params["categories"]:
            for product in range(PRODUCTS_PER_CATEGORY):
                total += ctx.read(product_key(category, product))
        return total

    return registry


def initial_data():
    data = {
        product_key(category, product): INITIAL_STOCK
        for category in range(CATEGORIES)
        for product in range(PRODUCTS_PER_CATEGORY)
    }
    for category in range(CATEGORIES):
        data[f"cat{category}:orders"] = 0
    return data


def main() -> None:
    cluster = ReplicatedDatabase(
        ClusterConfig(site_count=4, seed=13),
        build_registry(),
        initial_data=initial_data(),
    )
    sites = cluster.site_ids()
    stream = cluster.kernel.random.stream("shop.workload")

    # Update stream: orders submitted from all sites.
    submit_at = 0.0
    for index in range(ORDERS):
        submit_at += stream.exponential(0.002)
        cluster.kernel.schedule_at(
            submit_at,
            lambda site=sites[index % 4],
            category=stream.randint(0, CATEGORIES - 1),
            product=stream.randint(0, PRODUCTS_PER_CATEGORY - 1): cluster.submit(
                site, "place_order", {"category": category, "product": product}
            ),
        )

    # Query stream: dashboards scanning 2-3 categories, executed locally.
    queries = []
    query_at = 0.0
    for index in range(DASHBOARD_QUERIES):
        query_at += stream.exponential(0.005)
        first = stream.randint(0, CATEGORIES - 1)
        span = stream.randint(2, 3)
        categories = sorted({(first + offset) % CATEGORIES for offset in range(span)})
        cluster.kernel.schedule_at(
            query_at,
            lambda site=sites[index % 4], categories=categories: queries.append(
                (categories, cluster.submit_query(site, "stock_dashboard", {"categories": categories}))
            ),
        )

    cluster.run_until_idle()

    update_latency = summarize(cluster.all_client_latencies())
    query_latency = summarize(
        [execution.latency for _, execution in queries if execution.latency is not None]
    )

    contents = cluster.replica("N1").database_contents()
    sold = sum(value for key, value in contents.items() if key.endswith(":orders"))
    total_stock = sum(
        value for key, value in contents.items() if ":product" in key
    )
    print("Read-mostly e-commerce workload over 4 replicas")
    print(f"  orders committed              : {cluster.committed_counts()['N1']}")
    print(f"  items sold                    : {sold}")
    print(f"  stock + sold == initial stock : "
          f"{total_stock + sold == CATEGORIES * PRODUCTS_PER_CATEGORY * INITIAL_STOCK}")
    print(f"  mean update commit latency    : {update_latency.mean * 1000:.2f} ms")
    print(f"  mean dashboard query latency  : {query_latency.mean * 1000:.2f} ms "
          f"({query_latency.count} queries)")
    print(f"  replicas identical            : {cluster.database_divergence() == {}}")

    # Consistency of snapshots: a dashboard over all categories taken now must
    # equal the converged stock total.
    final_dashboard = cluster.submit_query(
        "N3", "stock_dashboard", {"categories": list(range(CATEGORIES))}
    )
    cluster.run_until_idle()
    print(f"  final dashboard vs. storage   : {final_dashboard.result} vs. {total_stock}")


if __name__ == "__main__":
    main()
